package core

import (
	"encoding/binary"
	"fmt"

	"madeleine2/internal/model"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/vclock"
)

// sisciPMM is the SISCI/SCI protocol module (§5.2.1). Data travels through
// a per-connection ring of slots inside an SCI segment exported by the
// receiver; the sender PIO-writes slots and the receiver polls. Consumed
// slots are credited back through a small ack segment exported by the
// sender. Three PIO transmission modules are active — an optimized
// short-message TM, the regular PIO TM, and the adaptive dual-buffering TM
// for blocks above 8 kB — plus the DMA TM, implemented but disabled by
// default because the D310's DMA tops out at 35 MB/s.
type sisciPMM struct {
	dev        *sisci.Dev
	chanID     int
	dmaEnabled bool
	dualOff    bool // ablation: disable the adaptive dual-buffering TM
	short      *sciSlotTM
	pio        *sciSlotTM
	dual       *sciStreamTM
	dma        *sciStreamTM
}

const (
	sciSlotSize  = 8 << 10 // one ring slot; also the dual-buffering chunk
	sciRingSlots = 32
)

func newSISCIPMM(node *simnet.Node, adapter, chanID int, dma, dualOff bool) (PMM, error) {
	dev, err := sisci.Attach(node, adapter)
	if err != nil {
		return nil, err
	}
	p := &sisciPMM{dev: dev, chanID: chanID, dmaEnabled: dma, dualOff: dualOff}
	p.short = &sciSlotTM{p: p, name: "sisci-short", size: model.SISCIShortMax, link: model.SISCIShort}
	p.pio = &sciSlotTM{p: p, name: "sisci-pio", size: sciSlotSize, link: model.SISCIPIO}
	p.dual = &sciStreamTM{p: p, name: "sisci-dual", link: model.SISCIDual, dma: false}
	p.dma = &sciStreamTM{p: p, name: "sisci-dma", link: model.SISCIDMA, dma: true}
	return p, nil
}

func (p *sisciPMM) Name() string { return "sisci" }

// TMs lists all four modules, the configuration-disabled ones included:
// pre-registration is about names the Switch step could ever pick.
func (p *sisciPMM) TMs() []TM { return []TM{p.short, p.pio, p.dual, p.dma} }

func (p *sisciPMM) Select(n int, sm SendMode, rm RecvMode) TM {
	switch {
	case p.dmaEnabled && n >= model.SISCIDualMin:
		return p.dma
	case n >= model.SISCIDualMin && !p.dualOff:
		return p.dual
	case n < model.SISCIShortMax:
		return p.short
	default:
		// Large blocks with dual-buffering disabled stream through the
		// regular PIO TM slot by slot (the statCopy BMM splits them).
		return p.pio
	}
}

func (p *sisciPMM) Link(n int) model.Link { return p.Select(n, SendCheaper, ReceiveCheaper).Link(n) }

// Segment id scheme: unique per owning adapter.
func (p *sisciPMM) ringID(peer int) uint32 { return uint32(p.chanID)<<16 | uint32(peer)<<1 }
func (p *sisciPMM) ackID(peer int) uint32  { return uint32(p.chanID)<<16 | uint32(peer)<<1 | 1 }

// sciConn is the per-connection SISCI state, partitioned by direction so a
// concurrent send and receive never share a mutable field: the send path
// (under the send lease) owns wSlot/freeSlots and drains ack; the receive
// path (under the receive lease) owns consumed and writes ackOut.
type sciConn struct {
	ring *sisci.LocalSegment // incoming data from the peer
	ack  *sisci.LocalSegment // incoming slot credits for our sends

	out    *sisci.RemoteSegment // the peer's ring, mapped
	ackOut *sisci.RemoteSegment // the peer's ack segment, mapped

	wSlot     int // next slot to write (send lease)
	freeSlots int // (send lease)
	consumed  int // slots consumed since the last credit write (receive lease)
}

func (p *sisciPMM) PreConnect(cs *ConnState) error {
	st := &sciConn{freeSlots: sciRingSlots}
	st.ring = p.dev.CreateSegment(p.ringID(cs.Remote()), sciSlotSize*sciRingSlots)
	st.ack = p.dev.CreateSegment(p.ackID(cs.Remote()), 64)
	cs.Priv = st
	return nil
}

func (p *sisciPMM) Connect(cs *ConnState) error {
	st := cs.Priv.(*sciConn)
	var err error
	// The peer's ring for data we send carries our rank in its id.
	st.out, err = p.dev.ConnectSegment(cs.Remote(), p.dev.Adapter().Index(), p.ringID(cs.Local()))
	if err != nil {
		return err
	}
	st.ackOut, err = p.dev.ConnectSegment(cs.Remote(), p.dev.Adapter().Index(), p.ackID(cs.Local()))
	if err != nil {
		return err
	}
	return nil
}

func sciState(cs *ConnState) *sciConn { return cs.Priv.(*sciConn) }

// sciAckLink is the cost of a slot-credit PIO write (a header-sized write).
var sciAckLink = model.SISCIShort

// writeSlot ships one ≤ slot-sized chunk into the peer's ring, blocking on
// slot credits when the ring is full.
func (p *sisciPMM) writeSlot(a *vclock.Actor, cs *ConnState, data []byte, link model.Link) error {
	if len(data) > sciSlotSize {
		return fmt.Errorf("core: sisci chunk %d exceeds slot size %d", len(data), sciSlotSize)
	}
	st := sciState(cs)
	if err := p.waitSlotCredit(a, st); err != nil {
		return err
	}
	// Harvest already-arrived credits without blocking, so long streams
	// track the receiver instead of stuttering at the ring boundary.
	for {
		_, _, tag, ok := st.ack.TryWaitWrite(a)
		if !ok {
			break
		}
		st.freeSlots += int(tag)
	}
	if err := cs.Announce(); err != nil {
		return err
	}
	st.out.MemCpy(a, st.wSlot*sciSlotSize, data, link, uint64(len(data)))
	st.wSlot = (st.wSlot + 1) % sciRingSlots
	st.freeSlots--
	return nil
}

// readSlot blocks for the next incoming slot and returns a copy of its
// payload (the slot is credited back according to the release policy).
func (p *sisciPMM) readSlot(a *vclock.Actor, cs *ConnState) ([]byte, error) {
	st := sciState(cs)
	off, n, _, ok := st.ring.WaitWrite(a)
	if !ok {
		return nil, ErrClosed
	}
	buf := make([]byte, n)
	st.ring.Read(off, buf)
	return buf, nil
}

// releaseSlot returns ring credit to the sender, batched to half a ring.
func (p *sisciPMM) releaseSlot(a *vclock.Actor, cs *ConnState, slots int) error {
	st := sciState(cs)
	st.consumed += slots
	if st.consumed >= sciRingSlots/2 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(st.consumed))
		st.ackOut.MemCpy(a, 0, b[:], sciAckLink, uint64(st.consumed))
		st.consumed = 0
	}
	return nil
}

// --- slot TMs (short-message and regular PIO) ---

// sciSlotTM copies aggregated user data into ring slots: a static-buffer
// TM whose protocol buffers are the ring slots themselves.
type sciSlotTM struct {
	p    *sisciPMM
	name string
	size int
	link model.Link
}

func (t *sciSlotTM) Name() string             { return t.name }
func (t *sciSlotTM) Link(n int) model.Link    { return t.link }
func (t *sciSlotTM) NewBMM(cs *ConnState) BMM { return newStatCopy(t, cs) }
func (t *sciSlotTM) StaticSize() int          { return t.size }

func (t *sciSlotTM) ObtainStaticBuffer(a *vclock.Actor, cs *ConnState) ([]byte, error) {
	return make([]byte, t.size), nil
}

func (t *sciSlotTM) SendBuffer(a *vclock.Actor, cs *ConnState, data []byte) error {
	return t.p.writeSlot(a, cs, data, t.link)
}

func (t *sciSlotTM) SendBufferGroup(a *vclock.Actor, cs *ConnState, group [][]byte) error {
	for _, g := range group {
		if err := t.SendBuffer(a, cs, g); err != nil {
			return err
		}
	}
	return nil
}

func (t *sciSlotTM) ReceiveStaticBuffer(a *vclock.Actor, cs *ConnState) ([]byte, error) {
	return t.p.readSlot(a, cs)
}

func (t *sciSlotTM) ReleaseStaticBuffer(a *vclock.Actor, cs *ConnState, buf []byte) error {
	return t.p.releaseSlot(a, cs, 1)
}

func (t *sciSlotTM) ReceiveBuffer(a *vclock.Actor, cs *ConnState, dst []byte) error {
	return ErrNoStatic
}

func (t *sciSlotTM) ReceiveSubBufferGroup(a *vclock.Actor, cs *ConnState, dsts [][]byte) error {
	return ErrNoStatic
}

// --- streaming TMs (dual-buffering PIO and DMA) ---

// sciStreamTM moves large dynamic buffers by chunking them through the
// ring. The PIO variant is the paper's adaptive dual-buffering algorithm:
// staging alternates between two buffers so the copy-in overlaps the SCI
// transfer, which its calibrated link model reflects; the chunk fixed cost
// applies once per message (pipeline fill). The DMA variant posts chunks
// to the NIC's DMA engine instead.
type sciStreamTM struct {
	p    *sisciPMM
	name string
	link model.Link
	dma  bool
}

func (t *sciStreamTM) Name() string             { return t.name }
func (t *sciStreamTM) Link(n int) model.Link    { return t.link }
func (t *sciStreamTM) NewBMM(cs *ConnState) BMM { return newEagerDyn(t, cs) }
func (t *sciStreamTM) StaticSize() int          { return 0 }

func (t *sciStreamTM) SendBuffer(a *vclock.Actor, cs *ConnState, data []byte) error {
	link := t.link
	for off := 0; off < len(data); off += sciSlotSize {
		end := off + sciSlotSize
		if end > len(data) {
			end = len(data)
		}
		if t.dma {
			// DMA: the CPU only posts descriptors; the engine streams.
			st := sciState(cs)
			if err := t.p.waitSlotCredit(a, st); err != nil {
				return err
			}
			if err := cs.Announce(); err != nil {
				return err
			}
			st.out.DMAPost(a, st.wSlot*sciSlotSize, data[off:end], uint64(end-off))
			st.wSlot = (st.wSlot + 1) % sciRingSlots
			st.freeSlots--
		} else {
			if err := t.p.writeSlot(a, cs, data[off:end], link); err != nil {
				return err
			}
		}
		link.Fixed = 0 // pipeline filled: later chunks stream
	}
	return nil
}

// waitSlotCredit blocks until at least one ring slot is free.
func (p *sisciPMM) waitSlotCredit(a *vclock.Actor, st *sciConn) error {
	for st.freeSlots == 0 {
		_, _, tag, ok := st.ack.WaitWrite(a)
		if !ok {
			return ErrClosed
		}
		st.freeSlots += int(tag)
	}
	return nil
}

func (t *sciStreamTM) SendBufferGroup(a *vclock.Actor, cs *ConnState, group [][]byte) error {
	for _, g := range group {
		if err := t.SendBuffer(a, cs, g); err != nil {
			return err
		}
	}
	return nil
}

func (t *sciStreamTM) ReceiveBuffer(a *vclock.Actor, cs *ConnState, dst []byte) error {
	for off := 0; off < len(dst); {
		chunk, err := t.p.readSlot(a, cs)
		if err != nil {
			return err
		}
		if off+len(chunk) > len(dst) {
			return asymmetryError(fmt.Sprintf("sisci stream block on %s", cs.ch.name), off+len(chunk), len(dst))
		}
		copy(dst[off:], chunk)
		off += len(chunk)
		if err := t.p.releaseSlot(a, cs, 1); err != nil {
			return err
		}
	}
	return nil
}

func (t *sciStreamTM) ReceiveSubBufferGroup(a *vclock.Actor, cs *ConnState, dsts [][]byte) error {
	for _, d := range dsts {
		if err := t.ReceiveBuffer(a, cs, d); err != nil {
			return err
		}
	}
	return nil
}

func (t *sciStreamTM) ObtainStaticBuffer(a *vclock.Actor, cs *ConnState) ([]byte, error) {
	return nil, ErrNoStatic
}

func (t *sciStreamTM) ReceiveStaticBuffer(a *vclock.Actor, cs *ConnState) ([]byte, error) {
	return nil, ErrNoStatic
}

func (t *sciStreamTM) ReleaseStaticBuffer(a *vclock.Actor, cs *ConnState, buf []byte) error {
	return ErrNoStatic
}
