package madv1

import (
	"bytes"
	"testing"

	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/vclock"
)

func pair(t *testing.T, name string) map[int]*Channel {
	t.Helper()
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(sisci.Network)
	w.Node(1).AddAdapter(sisci.Network)
	chans, err := New(w, name)
	if err != nil {
		t.Fatal(err)
	}
	return chans
}

func TestRoundTrip(t *testing.T) {
	chans := pair(t, "v1")
	s, r := vclock.NewActor("s"), vclock.NewActor("r")
	hdr := []byte{1, 2, 3, 4}
	body := make([]byte, 40<<10)
	for i := range body {
		body[i] = byte(i * 11)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m, err := chans[0].BeginPacking(s, 1)
		if err != nil {
			t.Error(err)
			return
		}
		m.Pack(hdr)
		m.Pack(body)
		if err := m.EndPacking(); err != nil {
			t.Error(err)
		}
	}()
	in, err := chans[1].BeginUnpacking(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	gh := make([]byte, 4)
	gb := make([]byte, len(body))
	if err := in.Unpack(gh); err != nil {
		t.Fatal(err)
	}
	if err := in.Unpack(gb); err != nil {
		t.Fatal(err)
	}
	if err := in.EndUnpacking(); err != nil {
		t.Fatal(err)
	}
	<-done
	if !bytes.Equal(gh, hdr) || !bytes.Equal(gb, body) {
		t.Fatal("payload corrupted")
	}
}

func TestErrors(t *testing.T) {
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(sisci.Network)
	if _, err := New(w, "single"); err == nil {
		t.Error("one SCI node must fail")
	}
	chans := pair(t, "errs")
	a := vclock.NewActor("a")
	if _, err := chans[0].BeginPacking(a, 5); err == nil {
		t.Error("unknown remote must fail")
	}
	if _, err := chans[0].BeginUnpacking(a, 5); err == nil {
		t.Error("unknown remote must fail on receive")
	}
	// Unpack discipline errors.
	s, r := vclock.NewActor("s"), vclock.NewActor("r")
	go func() {
		m, _ := chans[0].BeginPacking(s, 1)
		m.Pack([]byte{1, 2})
		m.EndPacking()
	}()
	in, err := chans[1].BeginUnpacking(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Unpack(make([]byte, 10)); err == nil {
		t.Error("unpack past the end must fail")
	}
	if err := in.EndUnpacking(); err == nil {
		t.Error("unconsumed bytes must be reported")
	}
}

// TestMadIvsMadII reproduces the paper's §1 motivation: on a non
// message-passing network (SCI), Madeleine I's message-passing-oriented
// internals cost real performance that Madeleine II recovers.
func TestMadIvsMadII(t *testing.T) {
	oneWayV1 := func(n int) vclock.Time {
		chans := pair(t, "cmp")
		s, r := vclock.NewActor("s"), vclock.NewActor("r")
		done := make(chan struct{})
		go func() {
			defer close(done)
			m, _ := chans[0].BeginPacking(s, 1)
			m.Pack(make([]byte, n))
			m.EndPacking()
		}()
		in, err := chans[1].BeginUnpacking(r, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, n)
		in.Unpack(buf)
		in.EndUnpacking()
		<-done
		return r.Now()
	}
	// Madeleine II's small-message latency is ~3.9 µs; Madeleine I pays
	// the marshal copies and the un-optimized PIO path.
	smallV1 := oneWayV1(4)
	if smallV1 <= vclock.Micros(4.5) {
		t.Errorf("Mad I small latency %v should exceed Mad II's 3.9 µs path", smallV1)
	}
	// Madeleine II reaches 82 MB/s with dual-buffering; Madeleine I is
	// capped by the single PIO method plus two marshal copies.
	bigV1 := oneWayV1(2 << 20)
	bwV1 := vclock.MBps(2<<20, bigV1)
	if bwV1 >= 55 {
		t.Errorf("Mad I large-message bandwidth %.1f MB/s should stay below the single PIO method's 55", bwV1)
	}
	if bwV1 < 25 {
		t.Errorf("Mad I bandwidth %.1f MB/s implausibly low", bwV1)
	}
}
