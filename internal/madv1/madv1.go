// Package madv1 re-implements the FIRST Madeleine's architecture for
// comparison: the paper's motivation (§1) is that Madeleine I's internals
// were "strongly message-passing oriented", so supporting non
// message-passing interfaces such as SISCI/SCI "was cumbersome and
// introduced some unnecessary overhead", and no provision existed for
// multiple networks in one session.
//
// Faithful to that description, this implementation:
//
//   - marshals every message into ONE contiguous staging buffer (the
//     message-passing worldview: a message is a byte array),
//   - ships it with a single transfer method per network — no Switch
//     step, no short-message path, no adaptive dual-buffering —
//   - pays the marshaling copy on both sides.
//
// On a message-passing network (BIP) that is close to optimal; on SCI the
// overhead the paper complains about appears immediately: the comparison
// harness (AblationMadIvsII) quantifies it.
package madv1

import (
	"fmt"

	"madeleine2/internal/model"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/vclock"
)

// marshalBandwidth is the host copy rate paid to build and to consume the
// contiguous message image.
const marshalBandwidth = model.MadCopyBandwidth

// Channel is a Madeleine I channel over SISCI: one segment ring per
// connection, one transfer method.
type Channel struct {
	name string
	rank int
	dev  *sisci.Dev
	conn map[int]*conn
}

// conn is one Madeleine I connection: an in-ring and a mapped out-ring.
type conn struct {
	ring   *sisci.LocalSegment
	out    *sisci.RemoteSegment
	remote int
}

const (
	ringSize  = 256 << 10
	chunkSize = 8 << 10 // single fixed transfer granularity
)

// v1Link is the one-and-only SISCI transfer method Madeleine I uses: the
// regular PIO path; no short-message optimization, no dual-buffering.
var v1Link = model.SISCIPIO

// New collectively creates a Madeleine I channel on every node of the
// world that has an SCI adapter.
func New(w *simnet.World, name string) (map[int]*Channel, error) {
	var members []int
	for r := 0; r < w.Size(); r++ {
		if _, err := w.Node(r).Adapter(sisci.Network, 0); err == nil {
			members = append(members, r)
		}
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("madv1: need at least two SCI nodes")
	}
	chans := make(map[int]*Channel, len(members))
	for _, r := range members {
		dev, err := sisci.Attach(w.Node(r), 0)
		if err != nil {
			return nil, err
		}
		chans[r] = &Channel{name: name, rank: r, dev: dev, conn: make(map[int]*conn)}
	}
	// Rings first, then mappings.
	for _, r := range members {
		for _, peer := range members {
			if peer == r {
				continue
			}
			c := &conn{remote: peer}
			c.ring = chans[r].dev.CreateSegment(v1SegID(name, peer), ringSize)
			chans[r].conn[peer] = c
		}
	}
	for _, r := range members {
		for _, peer := range members {
			if peer == r {
				continue
			}
			out, err := chans[r].dev.ConnectSegment(peer, 0, v1SegID(name, r))
			if err != nil {
				return nil, err
			}
			chans[r].conn[peer].out = out
		}
	}
	return chans, nil
}

// v1SegID derives a segment id from the channel name and peer (Madeleine I
// sessions are single-channel; a light hash keeps ids distinct per name).
func v1SegID(name string, peer int) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return h<<8 | uint32(peer)&0xff | 1<<31
}

// Message is a Madeleine I outgoing message: pack calls append to the
// contiguous staging buffer.
type Message struct {
	ch     *Channel
	actor  *vclock.Actor
	remote int
	buf    []byte
}

// BeginPacking starts a message toward remote.
func (c *Channel) BeginPacking(a *vclock.Actor, remote int) (*Message, error) {
	if _, ok := c.conn[remote]; !ok {
		return nil, fmt.Errorf("madv1: no connection %d->%d", c.rank, remote)
	}
	return &Message{ch: c, actor: a, remote: remote}, nil
}

// Pack appends a block: always a copy into the staging buffer (the
// message-passing worldview; there are no semantic flags to relax it).
func (m *Message) Pack(data []byte) {
	m.actor.Advance(vclock.TimeForBytes(len(data), marshalBandwidth))
	m.buf = append(m.buf, data...)
}

// EndPacking ships the staged image chunk by chunk over the single PIO
// transfer method.
func (m *Message) EndPacking() error {
	cn := m.ch.conn[m.remote]
	// Announce the message length first (the receiver needs the size of
	// the contiguous image: Madeleine I messages are self-sized).
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = byte(len(m.buf)), byte(len(m.buf)>>8), byte(len(m.buf)>>16), byte(len(m.buf)>>24)
	cn.out.MemCpy(m.actor, 0, hdr[:], v1Link, 0)
	off := len(hdr)
	for sent := 0; sent < len(m.buf); {
		n := len(m.buf) - sent
		if n > chunkSize {
			n = chunkSize
		}
		if off+n > ringSize {
			off = len(hdr)
		}
		cn.out.MemCpy(m.actor, off, m.buf[sent:sent+n], v1Link, uint64(n))
		sent += n
		off += n
	}
	m.buf = nil
	return nil
}

// Incoming is a received Madeleine I message being unpacked.
type Incoming struct {
	actor *vclock.Actor
	buf   []byte
	off   int
}

// BeginUnpacking receives the next message from remote: the whole
// contiguous image is assembled before unpacking can start.
func (c *Channel) BeginUnpacking(a *vclock.Actor, remote int) (*Incoming, error) {
	cn, ok := c.conn[remote]
	if !ok {
		return nil, fmt.Errorf("madv1: no connection %d->%d", c.rank, remote)
	}
	off, n, _, okw := cn.ring.WaitWrite(a)
	if !okw {
		return nil, fmt.Errorf("madv1: channel closed")
	}
	if n != 4 {
		return nil, fmt.Errorf("madv1: stream desynchronized (header %d bytes)", n)
	}
	var hdr [4]byte
	cn.ring.Read(off, hdr[:])
	total := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
	img := make([]byte, 0, total)
	for len(img) < total {
		o, k, _, okw := cn.ring.WaitWrite(a)
		if !okw {
			return nil, fmt.Errorf("madv1: channel closed mid-message")
		}
		chunk := make([]byte, k)
		cn.ring.Read(o, chunk)
		img = append(img, chunk...)
	}
	return &Incoming{actor: a, buf: img}, nil
}

// Unpack copies the next len(dst) bytes out of the message image.
func (in *Incoming) Unpack(dst []byte) error {
	if in.off+len(dst) > len(in.buf) {
		return fmt.Errorf("madv1: unpack past message end")
	}
	in.actor.Advance(vclock.TimeForBytes(len(dst), marshalBandwidth))
	copy(dst, in.buf[in.off:])
	in.off += len(dst)
	return nil
}

// EndUnpacking finishes the reception.
func (in *Incoming) EndUnpacking() error {
	if in.off != len(in.buf) {
		return fmt.Errorf("madv1: %d bytes left unconsumed", len(in.buf)-in.off)
	}
	return nil
}
