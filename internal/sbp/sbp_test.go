package sbp

import (
	"bytes"
	"testing"

	"madeleine2/internal/model"
	"madeleine2/internal/simnet"
	"madeleine2/internal/vclock"
)

func pair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(Network)
	w.Node(1).AddAdapter(Network)
	e0, err := Attach(w.Node(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Attach(w.Node(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	return e0, e1
}

func TestAttachErrors(t *testing.T) {
	w := simnet.NewWorld(1)
	if _, err := Attach(w.Node(0), 0); err == nil {
		t.Error("attach without an adapter must fail")
	}
}

func TestStaticBufferRoundTrip(t *testing.T) {
	e0, e1 := pair(t)
	s, r := vclock.NewActor("s"), vclock.NewActor("r")
	b := e0.ObtainBuffer()
	copy(b.Bytes(), "static payload")
	if err := e0.Send(s, 1, 0, b, 14); err != nil {
		t.Fatal(err)
	}
	rb, n, err := e1.Recv(r, 0, 0)
	if err != nil || n != 14 || !bytes.Equal(rb.Bytes()[:n], []byte("static payload")) {
		t.Fatalf("recv: %q/%d/%v", rb.Bytes()[:n], n, err)
	}
	e1.Release(rb)
	if want := model.SBP.Time(14); r.Now() != want {
		t.Errorf("one-way = %v, want %v", r.Now(), want)
	}
}

func TestPoolBoundsAndRecycling(t *testing.T) {
	e0, e1 := pair(t)
	s := vclock.NewActor("s")
	// Drain the whole tx pool, send everything, and verify the buffers
	// return to the pool after Send (the kernel owns them again).
	bufs := make([]*Buf, PoolSize)
	for i := range bufs {
		bufs[i] = e0.ObtainBuffer()
		bufs[i].Bytes()[0] = byte(i)
	}
	for _, b := range bufs {
		if err := e0.Send(s, 1, 0, b, 1); err != nil {
			t.Fatal(err)
		}
	}
	// All buffers recycled: obtaining PoolSize more must not block.
	for i := 0; i < PoolSize; i++ {
		e0.Release(e0.ObtainBuffer())
	}
	r := vclock.NewActor("r")
	for i := 0; i < PoolSize; i++ {
		rb, _, err := e1.Recv(r, 0, 0)
		if err != nil || rb.Bytes()[0] != byte(i) {
			t.Fatalf("recv %d: %v", i, err)
		}
		e1.Release(rb)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	e0, _ := pair(t)
	s := vclock.NewActor("s")
	b := e0.ObtainBuffer()
	if err := e0.Send(s, 1, 0, b, BufSize+1); err == nil {
		t.Error("payload above the static buffer size must be rejected")
	}
	e0.Release(b)
}

func TestSendToMissingPeer(t *testing.T) {
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(Network)
	e0, _ := Attach(w.Node(0), 0)
	s := vclock.NewActor("s")
	b := e0.ObtainBuffer()
	if err := e0.Send(s, 1, 0, b, 4); err == nil {
		t.Error("send to a node without an adapter must fail")
	}
}
