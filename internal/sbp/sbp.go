// Package sbp re-implements the contract of SBP (Russell & Hatcher's
// kernel protocol for reliable communication), the paper's example of an
// interface that "requires data to be written in specific buffers before
// being sent" (§6.1): static buffers on BOTH the sending and the receiving
// side. It exists to exercise the forwarding layer's copy-avoidance matrix
// — with SBP on one side of a gateway, one extra copy is unavoidable.
package sbp

import (
	"fmt"

	"madeleine2/internal/model"
	"madeleine2/internal/simnet"
	"madeleine2/internal/vclock"
)

// Network is the fabric name SBP adapters attach to.
const Network = "sbpnet"

// BufSize is the fixed size of SBP's kernel static buffers.
const BufSize = model.SBPBufSize

// PoolSize is the number of static buffers per endpoint direction.
const PoolSize = 8

// Buf is one kernel static buffer. Senders obtain one, fill it, and send
// it; receivers get one from Recv and must Release it back to the pool.
type Buf struct {
	data []byte
	home *simnet.Queue[*Buf]
}

// Bytes exposes the buffer's full capacity.
func (b *Buf) Bytes() []byte { return b.data }

// Endpoint is one node's SBP instance.
type Endpoint struct {
	adapter *simnet.Adapter
	txPool  *simnet.Queue[*Buf]
	rxPool  *simnet.Queue[*Buf]
}

// Attach opens SBP on the idx-th adapter of node n on the sbpnet fabric.
func Attach(n *simnet.Node, idx int) (*Endpoint, error) {
	a, err := n.Adapter(Network, idx)
	if err != nil {
		return nil, fmt.Errorf("sbp: %w", err)
	}
	e := &Endpoint{adapter: a, txPool: simnet.NewQueue[*Buf](), rxPool: simnet.NewQueue[*Buf]()}
	for i := 0; i < PoolSize; i++ {
		e.txPool.Push(&Buf{data: make([]byte, BufSize), home: e.txPool})
		e.rxPool.Push(&Buf{data: make([]byte, BufSize), home: e.rxPool})
	}
	return e, nil
}

// Node reports the rank of the endpoint's host.
func (e *Endpoint) Node() int { return e.adapter.Node().ID() }

// ObtainBuffer takes a static send buffer from the kernel pool, blocking
// until one is free (the protocol's flow control).
func (e *Endpoint) ObtainBuffer() *Buf {
	b, ok := e.txPool.Pop()
	if !ok {
		panic("sbp: endpoint closed")
	}
	return b
}

// Release returns a buffer to its pool.
func (e *Endpoint) Release(b *Buf) { b.home.Push(b) }

// Send transmits the first n bytes of the static buffer to (dst, lane) and
// returns the buffer to the send pool. The payload is copied into a
// receive-side static buffer — SBP's second unavoidable copy happens on
// Recv's consumer, not here.
func (e *Endpoint) Send(a *vclock.Actor, dst, lane int, b *Buf, n int) error {
	if n > len(b.data) {
		return fmt.Errorf("sbp: payload %d exceeds static buffer size %d", n, len(b.data))
	}
	pa, err := e.adapter.Peer(dst, e.adapter.Index())
	if err != nil {
		return fmt.Errorf("sbp: %w", err)
	}
	start, _ := e.adapter.TxEngine().Acquire(a.Now(), model.SBP.ByteTime(n))
	arrive := start + model.SBP.Time(n)
	cp := make([]byte, n)
	copy(cp, b.data[:n])
	e.adapter.Deliver(pa, lane, simnet.Packet{Data: cp, Inject: int64(start), Arrive: int64(arrive)})
	e.Release(b)
	return nil
}

// Recv blocks for the next message from (src, lane), lands it in a static
// receive buffer, and returns that buffer and the payload length. The
// caller must Release the buffer after consuming it.
func (e *Endpoint) Recv(a *vclock.Actor, src, lane int) (*Buf, int, error) {
	pkt, ok := e.adapter.RxLane(src, lane).Pop()
	if !ok {
		return nil, 0, fmt.Errorf("sbp: endpoint closed")
	}
	b, ok := e.rxPool.Pop()
	if !ok {
		return nil, 0, fmt.Errorf("sbp: endpoint closed")
	}
	copy(b.data, pkt.Data)
	a.Sync(vclock.Time(pkt.Arrive))
	return b, len(pkt.Data), nil
}
