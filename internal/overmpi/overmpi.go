// Package overmpi is the "Madeleine II on top of MPI" port the paper
// mentions in §5.3 ("Madeleine II has also been ported (quite
// straightforwardly) on top of MPI"): a protocol module whose wire is an
// MPI communicator — usually this repository's own ch_mad device, closing
// the loop the original project used for portability bootstrap.
//
// The module registers itself under a caller-chosen driver name through
// core.RegisterDriver, demonstrating the external-module mechanism. Each
// Madeleine channel multiplexes over one MPI tag.
//
// Ownership contract (see core.DriverDef): core invokes every send-path TM
// method under the connection's send lease and every receive-path method
// under its receive lease, so a driver sees at most one sender and one
// receiver per connection at a time — but possibly concurrently with each
// other, and concurrently with other connections of the same channel. This
// module keeps no per-message state of its own (the communicator handles
// its own locking), so it needs no Priv partitioning; drivers that do cache
// per-connection state in Priv must split it by direction the way the
// built-in PMMs do.
package overmpi

import (
	"fmt"

	"madeleine2/internal/core"
	"madeleine2/internal/model"
	"madeleine2/internal/mpi"
	"madeleine2/internal/simnet"
	"madeleine2/internal/vclock"
)

// Install registers the driver under the given name, backed by the given
// per-node-rank communicators. All communicators must span the same node
// set. Call core.UnregisterDriver(name) to remove it.
func Install(name string, comms map[int]*mpi.Comm) error {
	if len(comms) == 0 {
		return fmt.Errorf("overmpi: no communicators")
	}
	return core.RegisterDriver(core.DriverDef{
		Name: name,
		Probe: func(node *simnet.Node, adapter int) error {
			if comms[node.ID()] == nil {
				return fmt.Errorf("overmpi: node %d has no communicator", node.ID())
			}
			return nil
		},
		New: func(node *simnet.Node, adapter, chanID int) (core.PMM, error) {
			c := comms[node.ID()]
			if c == nil {
				return nil, fmt.Errorf("overmpi: node %d has no communicator", node.ID())
			}
			// A dedicated tag region keeps Madeleine traffic away from
			// typical application MPI tags (still within mpi.MaxTag).
			p := &pmm{comm: c, tag: tagBase + chanID}
			p.tm = &tm{p: p}
			return p, nil
		},
	})
}

// tagBase is the first MPI tag used for Madeleine channels over MPI.
const tagBase = 30000

// pmm is the MPI-backed protocol module: one dynamic transmission module
// whose buffers are MPI messages.
type pmm struct {
	comm *mpi.Comm
	tag  int
	tm   *tm
}

func (p *pmm) Name() string                                             { return "overmpi" }
func (p *pmm) Select(n int, sm core.SendMode, rm core.RecvMode) core.TM { return p.tm }
func (p *pmm) TMs() []core.TM                                           { return []core.TM{p.tm} }
func (p *pmm) Link(n int) model.Link                                    { return p.comm.Link(n) }
func (p *pmm) PreConnect(cs *core.ConnState) error                      { return nil }
func (p *pmm) Connect(cs *core.ConnState) error                         { return nil }

type tm struct{ p *pmm }

func (t *tm) Name() string                       { return "overmpi" }
func (t *tm) Link(n int) model.Link              { return t.p.comm.Link(n) }
func (t *tm) NewBMM(cs *core.ConnState) core.BMM { return core.NewEagerBMM(t, cs) }
func (t *tm) StaticSize() int                    { return 0 }

func (t *tm) rankOf(node int) (int, error) {
	r, ok := t.p.comm.RankOfNode(node)
	if !ok {
		return 0, fmt.Errorf("overmpi: node %d is not in the communicator", node)
	}
	return r, nil
}

func (t *tm) SendBuffer(a *vclock.Actor, cs *core.ConnState, data []byte) error {
	dst, err := t.rankOf(cs.Remote())
	if err != nil {
		return err
	}
	if err := cs.Announce(); err != nil {
		return err
	}
	return t.p.comm.SendAs(a, dst, t.p.tag, data)
}

func (t *tm) SendBufferGroup(a *vclock.Actor, cs *core.ConnState, group [][]byte) error {
	for _, g := range group {
		if err := t.SendBuffer(a, cs, g); err != nil {
			return err
		}
	}
	return nil
}

func (t *tm) ReceiveBuffer(a *vclock.Actor, cs *core.ConnState, dst []byte) error {
	src, err := t.rankOf(cs.Remote())
	if err != nil {
		return err
	}
	st, err := t.p.comm.RecvAs(a, src, t.p.tag, dst)
	if err != nil {
		return err
	}
	if st.Count != len(dst) {
		return fmt.Errorf("overmpi: asymmetric block: got %d bytes, want %d", st.Count, len(dst))
	}
	return nil
}

func (t *tm) ReceiveSubBufferGroup(a *vclock.Actor, cs *core.ConnState, dsts [][]byte) error {
	for _, d := range dsts {
		if err := t.ReceiveBuffer(a, cs, d); err != nil {
			return err
		}
	}
	return nil
}

func (t *tm) ObtainStaticBuffer(a *vclock.Actor, cs *core.ConnState) ([]byte, error) {
	return nil, core.ErrNoStatic
}

func (t *tm) ReceiveStaticBuffer(a *vclock.Actor, cs *core.ConnState) ([]byte, error) {
	return nil, core.ErrNoStatic
}

func (t *tm) ReleaseStaticBuffer(a *vclock.Actor, cs *core.ConnState, buf []byte) error {
	return core.ErrNoStatic
}
