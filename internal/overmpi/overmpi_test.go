package overmpi

import (
	"bytes"
	"fmt"
	"testing"

	"madeleine2/internal/core"
	"madeleine2/internal/mpi"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/vclock"
)

// stack builds: simulated SCI → Madeleine channel → MPI comms → the
// overmpi driver registered under name → a Madeleine channel over MPI.
func stack(t *testing.T, name string) (map[int]*core.Channel, *core.Session) {
	t.Helper()
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(sisci.Network)
	w.Node(1).AddAdapter(sisci.Network)
	sess := core.NewSession(w)
	base, err := sess.NewChannel(core.ChannelSpec{Name: name + "-base", Driver: "sisci"})
	if err != nil {
		t.Fatal(err)
	}
	comms := map[int]*mpi.Comm{}
	for r := 0; r < 2; r++ {
		c, err := mpi.NewComm(base[r], vclock.NewActor(fmt.Sprintf("mpi-%d", r)))
		if err != nil {
			t.Fatal(err)
		}
		comms[r] = c
	}
	if err := Install(name, comms); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { core.UnregisterDriver(name) })
	chans, err := sess.NewChannel(core.ChannelSpec{Name: name + "-top", Driver: name})
	if err != nil {
		t.Fatal(err)
	}
	return chans, sess
}

func TestMadeleineOverMPIRoundTrip(t *testing.T) {
	chans, _ := stack(t, "ompi-rt")
	s, r := vclock.NewActor("s"), vclock.NewActor("r")
	hdr := []byte{9, 9}
	body := make([]byte, 40<<10)
	for i := range body {
		body[i] = byte(i * 3)
	}
	go func() {
		conn, _ := chans[0].BeginPacking(s, 1)
		conn.Pack(hdr, core.SendSafer, core.ReceiveExpress)
		conn.Pack(body, core.SendCheaper, core.ReceiveCheaper)
		conn.EndPacking()
	}()
	conn, err := chans[1].BeginUnpacking(r)
	if err != nil {
		t.Fatal(err)
	}
	gh := make([]byte, 2)
	if err := conn.Unpack(gh, core.SendSafer, core.ReceiveExpress); err != nil {
		t.Fatal(err)
	}
	gb := make([]byte, len(body))
	if err := conn.Unpack(gb, core.SendCheaper, core.ReceiveCheaper); err != nil {
		t.Fatal(err)
	}
	if err := conn.EndUnpacking(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gh, hdr) || !bytes.Equal(gb, body) {
		t.Fatal("payload corrupted through the MPI-backed module")
	}
	// The stacked path must cost more than raw Madeleine/SISCI but stay in
	// the same order of magnitude (the §5.3 "straightforward port").
	if r.Now() < vclock.Micros(400) {
		t.Errorf("stacked 40 kB one-way %v implausibly fast", r.Now())
	}
}

func TestDriverAppearsInRegistry(t *testing.T) {
	chans, _ := stack(t, "ompi-reg")
	found := false
	for _, d := range core.Drivers() {
		if d == "ompi-reg" {
			found = true
		}
	}
	if !found {
		t.Error("registered driver must be listed")
	}
	if chans[0].PMMName() != "overmpi" {
		t.Errorf("PMM name = %q", chans[0].PMMName())
	}
	if chans[0].Link(1024).Bandwidth <= 0 {
		t.Error("stacked link must carry a cost model")
	}
}

func TestInstallErrors(t *testing.T) {
	if err := Install("x", nil); err == nil {
		t.Error("empty communicator set must fail")
	}
	if err := Install("sisci", map[int]*mpi.Comm{0: nil}); err == nil {
		t.Error("shadowing a built-in driver must fail")
	}
	comms := map[int]*mpi.Comm{0: {}}
	if err := Install("dup-drv", comms); err != nil {
		t.Fatal(err)
	}
	defer core.UnregisterDriver("dup-drv")
	if err := Install("dup-drv", comms); err == nil {
		t.Error("duplicate registration must fail")
	}
}

func TestRegisterDriverValidation(t *testing.T) {
	if err := core.RegisterDriver(core.DriverDef{Name: "incomplete"}); err == nil {
		t.Error("incomplete definitions must be rejected")
	}
}
