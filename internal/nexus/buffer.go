package nexus

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is the Nexus-style typed message buffer: put/get pairs must be
// symmetric, mirroring Madeleine's pack/unpack discipline one level up.
type Buffer struct {
	data []byte
	off  int
}

// NewBuffer returns an empty buffer for composing an RSR body.
func NewBuffer() *Buffer { return &Buffer{} }

// NewBufferFrom wraps a received body for extraction.
func NewBufferFrom(body []byte) *Buffer { return &Buffer{data: body} }

// Bytes exposes the composed contents.
func (b *Buffer) Bytes() []byte { return b.data }

// Remaining reports how many bytes are left to extract.
func (b *Buffer) Remaining() int { return len(b.data) - b.off }

// PutUint32 appends an integer.
func (b *Buffer) PutUint32(v uint32) *Buffer {
	b.data = binary.LittleEndian.AppendUint32(b.data, v)
	return b
}

// PutFloat64 appends a float.
func (b *Buffer) PutFloat64(v float64) *Buffer {
	b.data = binary.LittleEndian.AppendUint64(b.data, math.Float64bits(v))
	return b
}

// PutBytes appends a length-prefixed byte block.
func (b *Buffer) PutBytes(v []byte) *Buffer {
	b.PutUint32(uint32(len(v)))
	b.data = append(b.data, v...)
	return b
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(s string) *Buffer { return b.PutBytes([]byte(s)) }

func (b *Buffer) take(n int) ([]byte, error) {
	if b.off+n > len(b.data) {
		return nil, fmt.Errorf("nexus: buffer underflow: need %d bytes, have %d", n, len(b.data)-b.off)
	}
	v := b.data[b.off : b.off+n]
	b.off += n
	return v, nil
}

// GetUint32 extracts an integer.
func (b *Buffer) GetUint32() (uint32, error) {
	v, err := b.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}

// GetFloat64 extracts a float.
func (b *Buffer) GetFloat64() (float64, error) {
	v, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(v)), nil
}

// GetBytes extracts a length-prefixed byte block.
func (b *Buffer) GetBytes() ([]byte, error) {
	n, err := b.GetUint32()
	if err != nil {
		return nil, err
	}
	return b.take(int(n))
}

// GetString extracts a length-prefixed string.
func (b *Buffer) GetString() (string, error) {
	v, err := b.GetBytes()
	return string(v), err
}
