// Package nexus implements the Nexus-over-Madeleine II port of §5.3.2: a
// compact remote-service-request (RSR) runtime in the style of Foster,
// Kesselman and Tuecke's Nexus, using Madeleine channels as its protocol
// module — "Madeleine II is currently seen as one protocol by Nexus".
//
// The model: each process registers handlers; a startpoint is bound to a
// remote process's context; issuing an RSR on a startpoint ships a handler
// identifier plus a user buffer, and a dispatcher thread on the remote
// process runs the handler. Nexus's connection-oriented initialization is
// mapped onto Madeleine's cluster-oriented channels by binding startpoints
// lazily (the impedance mismatch §5.3.2 describes).
package nexus

import (
	"encoding/binary"
	"fmt"
	"sync"

	"madeleine2/internal/core"
	"madeleine2/internal/vclock"
)

// rsrOverhead is the per-side cost of the Nexus machinery (handler table
// lookup, context management, buffer bookkeeping) — "a rather heavy
// interface": Madeleine's 3.9 µs SISCI latency becomes a ~23 µs RSR
// latency (Fig. 7: "minimal latency below 25 µs").
var rsrOverhead = vclock.Micros(8)

// Handler processes one incoming remote service request. It runs on the
// process's dispatcher thread; a is that thread's virtual clock. Handlers
// may issue RSRs of their own (e.g. to reply).
type Handler func(a *vclock.Actor, from int, buf *Buffer)

// Process is one node's Nexus context over one or several Madeleine
// channels ("Nexus features multiprotocol support and Madeleine II is
// currently seen as one protocol by Nexus", §5.3.2).
type Process struct {
	chans []*core.Channel
	rank  int
	mu    sync.Mutex
	table map[uint32]Handler
	done  chan struct{}
	wg    sync.WaitGroup
}

// Attach builds the Nexus context of one rank and starts its dispatcher.
func Attach(ch *core.Channel) *Process { return AttachMulti(ch) }

// AttachMulti builds a Nexus context over several protocol modules: the
// §5.3.2 Globus scenario — "regular TCP/Nexus protocol for wide area
// transmission and the Madeleine II Nexus protocol for local cluster
// high-performance computation". Startpoints pick the cheapest protocol
// that reaches their destination. All channels must belong to one rank.
func AttachMulti(chans ...*core.Channel) *Process {
	if len(chans) == 0 {
		panic("nexus: AttachMulti needs at least one channel")
	}
	p := &Process{
		chans: chans,
		rank:  chans[0].Rank(),
		table: make(map[uint32]Handler),
		done:  make(chan struct{}),
	}
	for _, ch := range chans {
		if ch.Rank() != p.rank {
			panic("nexus: channels of one process must share the rank")
		}
		p.wg.Add(1)
		go p.dispatch(ch)
	}
	go func() {
		p.wg.Wait()
		close(p.done)
	}()
	return p
}

// Rank reports the process's node rank.
func (p *Process) Rank() int { return p.rank }

// Register binds a handler id. Re-registering replaces the handler.
func (p *Process) Register(id uint32, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.table[id] = h
}

// Close stops the dispatchers once pending requests drain.
func (p *Process) Close() {
	for _, ch := range p.chans {
		ch.Close()
	}
	<-p.done
}

// Startpoint is a remote-invocation capability bound to a remote process,
// the moral equivalent of a Nexus global pointer's startpoint. It carries
// the protocol selected for its destination.
type Startpoint struct {
	p      *Process
	ch     *core.Channel
	remote int
}

// Bind returns a startpoint to the remote rank, selecting the process's
// cheapest protocol (by small-message cost) that reaches it.
func (p *Process) Bind(remote int) (*Startpoint, error) {
	if remote == p.rank {
		return nil, fmt.Errorf("nexus: cannot bind a startpoint to self")
	}
	var best *core.Channel
	for _, ch := range p.chans {
		reaches := false
		for _, m := range ch.Members() {
			if m == remote {
				reaches = true
			}
		}
		if !reaches {
			continue
		}
		if best == nil || ch.Link(64).Time(64) < best.Link(64).Time(64) {
			best = ch
		}
	}
	if best == nil {
		return nil, fmt.Errorf("nexus: rank %d is not reachable on any of the process's protocols", remote)
	}
	return &Startpoint{p: p, ch: best, remote: remote}, nil
}

// Protocol reports the name of the protocol module the startpoint uses.
func (s *Startpoint) Protocol() string { return s.ch.PMMName() }

// Remote reports the startpoint's target rank.
func (s *Startpoint) Remote() int { return s.remote }

// RSR issues a remote service request: handler id plus the buffer's
// contents. The envelope travels express (the dispatcher needs it to look
// up the handler and size the extraction), the body cheaper — the same
// split Madeleine was designed around.
func (s *Startpoint) RSR(a *vclock.Actor, handler uint32, buf *Buffer) error {
	a.Advance(rsrOverhead)
	conn, err := s.ch.BeginPacking(a, s.remote)
	if err != nil {
		return err
	}
	body := buf.Bytes()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], handler)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)))
	if err := conn.Pack(hdr[:], core.SendSafer, core.ReceiveExpress); err != nil {
		return err
	}
	if len(body) > 0 {
		if err := conn.Pack(body, core.SendCheaper, core.ReceiveCheaper); err != nil {
			return err
		}
	}
	return conn.EndPacking()
}

// dispatch is the handler thread of one protocol module. It runs
// concurrently with application threads issuing RSRs on the same channel
// (including toward the same peer): core's per-direction leases make each
// connection full duplex, so the dispatcher's receive path never contends
// with a sender's state.
func (p *Process) dispatch(ch *core.Channel) {
	defer p.wg.Done()
	a := vclock.NewActor(fmt.Sprintf("nexus-dispatch-%d-%s", p.rank, ch.Name()))
	for {
		conn, err := ch.BeginUnpacking(a)
		if err != nil {
			return // channel closed
		}
		var hdr [8]byte
		if err := conn.Unpack(hdr[:], core.SendSafer, core.ReceiveExpress); err != nil {
			panic(fmt.Sprintf("nexus dispatch %d: %v", p.rank, err))
		}
		id := binary.LittleEndian.Uint32(hdr[0:])
		n := int(binary.LittleEndian.Uint32(hdr[4:]))
		body := make([]byte, n)
		if n > 0 {
			if err := conn.Unpack(body, core.SendCheaper, core.ReceiveCheaper); err != nil {
				panic(fmt.Sprintf("nexus dispatch %d: %v", p.rank, err))
			}
		}
		if err := conn.EndUnpacking(); err != nil {
			panic(fmt.Sprintf("nexus dispatch %d: %v", p.rank, err))
		}
		a.Advance(rsrOverhead)
		p.mu.Lock()
		h := p.table[id]
		p.mu.Unlock()
		if h == nil {
			panic(fmt.Sprintf("nexus dispatch %d: no handler %d", p.rank, id))
		}
		h(a, conn.Remote(), NewBufferFrom(body))
	}
}
