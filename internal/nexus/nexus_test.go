package nexus

import (
	"bytes"
	"testing"

	"madeleine2/internal/core"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/tcpnet"
	"madeleine2/internal/vclock"
)

// procs builds two attached Nexus processes over the given driver.
func procs(t *testing.T, driver string) (*Process, *Process) {
	t.Helper()
	w := simnet.NewWorld(2)
	for i := 0; i < 2; i++ {
		w.Node(i).AddAdapter(sisci.Network)
		w.Node(i).AddAdapter(tcpnet.Network)
	}
	sess := core.NewSession(w)
	chans, err := sess.NewChannel(core.ChannelSpec{Name: "nx-" + driver, Driver: driver})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := Attach(chans[0]), Attach(chans[1])
	t.Cleanup(func() { p0.Close(); p1.Close() })
	return p0, p1
}

func TestRSRRoundTrip(t *testing.T) {
	p0, p1 := procs(t, "sisci")
	got := make(chan string, 1)
	p1.Register(1, func(a *vclock.Actor, from int, buf *Buffer) {
		s, err := buf.GetString()
		if err != nil || from != 0 {
			t.Errorf("handler: %q from %d, %v", s, from, err)
		}
		got <- s
	})
	sp, err := p0.Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Remote() != 1 {
		t.Fatal("startpoint remote wrong")
	}
	a := vclock.NewActor("app0")
	if err := sp.RSR(a, 1, NewBuffer().PutString("invoke me")); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != "invoke me" {
		t.Errorf("handler got %q", s)
	}
}

func TestRSREcho(t *testing.T) {
	// The Fig. 7 measurement pattern: an echo service; the round trip
	// divides into the one-way RSR latency.
	p0, p1 := procs(t, "sisci")
	const payload = 4

	// p1: echo handler replies on its own startpoint back to 0.
	sp10, err := p1.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	p1.Register(2, func(a *vclock.Actor, from int, buf *Buffer) {
		data, _ := buf.GetBytes()
		if err := sp10.RSR(a, 3, NewBuffer().PutBytes(data)); err != nil {
			t.Error(err)
		}
	})
	done := make(chan vclock.Time, 1)
	p0.Register(3, func(a *vclock.Actor, from int, buf *Buffer) {
		done <- a.Now()
	})
	sp01, err := p0.Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	a := vclock.NewActor("app0")
	if err := sp01.RSR(a, 2, NewBuffer().PutBytes(make([]byte, payload))); err != nil {
		t.Fatal(err)
	}
	rtt := <-done
	lat := (rtt / 2).Microseconds()
	// Fig. 7: "minimal latency below 25 µs" over SISCI, well above raw
	// Madeleine's 3.9 µs.
	if lat >= 25 || lat < 15 {
		t.Errorf("Nexus/Mad/SISCI RSR latency = %.1f µs, want 15–25", lat)
	}
}

func TestRSROverTCPIsSlower(t *testing.T) {
	latency := func(driver string) vclock.Time {
		p0, p1 := procs(t, driver)
		done := make(chan vclock.Time, 1)
		p1.Register(9, func(a *vclock.Actor, from int, buf *Buffer) {
			done <- a.Now()
		})
		sp, err := p0.Bind(1)
		if err != nil {
			t.Fatal(err)
		}
		a := vclock.NewActor("app")
		if err := sp.RSR(a, 9, NewBuffer().PutUint32(1)); err != nil {
			t.Fatal(err)
		}
		return <-done
	}
	sci, tcp := latency("sisci"), latency("tcp")
	if sci >= tcp {
		t.Errorf("Nexus over SISCI (%v) must beat Nexus over TCP (%v) — the Fig. 7 gap", sci, tcp)
	}
	if tcp < vclock.Micros(60) {
		t.Errorf("Nexus over TCP = %v, implausibly below the kernel stack cost", tcp)
	}
}

func TestBufferCodec(t *testing.T) {
	b := NewBuffer().PutUint32(42).PutFloat64(3.5).PutString("hi").PutBytes([]byte{1, 2})
	r := NewBufferFrom(b.Bytes())
	if v, err := r.GetUint32(); err != nil || v != 42 {
		t.Errorf("GetUint32 = %d, %v", v, err)
	}
	if v, err := r.GetFloat64(); err != nil || v != 3.5 {
		t.Errorf("GetFloat64 = %g, %v", v, err)
	}
	if v, err := r.GetString(); err != nil || v != "hi" {
		t.Errorf("GetString = %q, %v", v, err)
	}
	if v, err := r.GetBytes(); err != nil || !bytes.Equal(v, []byte{1, 2}) {
		t.Errorf("GetBytes = %v, %v", v, err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
	if _, err := r.GetUint32(); err == nil {
		t.Error("underflow must be reported")
	}
}

func TestBindErrors(t *testing.T) {
	p0, _ := procs(t, "tcp")
	if _, err := p0.Bind(0); err == nil {
		t.Error("self-bind must fail")
	}
	if _, err := p0.Bind(9); err == nil {
		t.Error("binding an unreachable rank must fail")
	}
}

func TestLargeRSRBandwidth(t *testing.T) {
	// Fig. 7's bandwidth panel: large RSRs over SISCI ride Madeleine's
	// dual-buffering and land near its asymptote.
	p0, p1 := procs(t, "sisci")
	const n = 1 << 20
	done := make(chan vclock.Time, 1)
	p1.Register(4, func(a *vclock.Actor, from int, buf *Buffer) {
		data, err := buf.GetBytes()
		if err != nil || len(data) != n {
			t.Errorf("handler: %d bytes, %v", len(data), err)
		}
		done <- a.Now()
	})
	sp, _ := p0.Bind(1)
	a := vclock.NewActor("app")
	if err := sp.RSR(a, 4, NewBuffer().PutBytes(make([]byte, n))); err != nil {
		t.Fatal(err)
	}
	bw := vclock.MBps(n, <-done)
	if bw < 70 || bw > 82 {
		t.Errorf("large RSR bandwidth = %.1f MB/s, want close to Madeleine's 82", bw)
	}
}

func TestMultiprotocolSelection(t *testing.T) {
	// The §5.3.2 Globus scenario: nodes 0 and 1 form an SCI cluster; node
	// 2 is reachable over TCP only (the "wide area" peer). One Nexus
	// context per node holds both protocols; startpoints pick per
	// destination.
	w := simnet.NewWorld(3)
	for i := 0; i < 3; i++ {
		w.Node(i).AddAdapter(tcpnet.Network)
	}
	w.Node(0).AddAdapter(sisci.Network)
	w.Node(1).AddAdapter(sisci.Network)
	sess := core.NewSession(w)
	tcp, err := sess.NewChannel(core.ChannelSpec{Name: "wan", Driver: "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	sci, err := sess.NewChannel(core.ChannelSpec{Name: "san", Driver: "sisci"})
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Process, 3)
	for i := 0; i < 3; i++ {
		if i <= 1 {
			procs[i] = AttachMulti(tcp[i], sci[i])
		} else {
			procs[i] = AttachMulti(tcp[i])
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Close()
		}
	})

	// Cluster-local startpoint rides Madeleine/SISCI...
	local, err := procs[0].Bind(1)
	if err != nil {
		t.Fatal(err)
	}
	if local.Protocol() != "sisci" {
		t.Errorf("local startpoint uses %q, want sisci", local.Protocol())
	}
	// ...the WAN startpoint falls back to TCP.
	wan, err := procs[0].Bind(2)
	if err != nil {
		t.Fatal(err)
	}
	if wan.Protocol() != "tcp" {
		t.Errorf("wan startpoint uses %q, want tcp", wan.Protocol())
	}

	// Both deliver RSRs to the same handler table semantics.
	got := make(chan string, 2)
	handler := func(tag string) Handler {
		return func(a *vclock.Actor, from int, buf *Buffer) {
			s, _ := buf.GetString()
			got <- tag + ":" + s
		}
	}
	procs[1].Register(1, handler("san"))
	procs[2].Register(1, handler("wan"))
	a := vclock.NewActor("app")
	if err := local.RSR(a, 1, NewBuffer().PutString("x")); err != nil {
		t.Fatal(err)
	}
	if err := wan.RSR(a, 1, NewBuffer().PutString("y")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{<-got: true, <-got: true}
	if !seen["san:x"] || !seen["wan:y"] {
		t.Errorf("deliveries = %v", seen)
	}
}

func TestMultiprotocolUnreachable(t *testing.T) {
	w := simnet.NewWorld(3)
	w.Node(0).AddAdapter(sisci.Network)
	w.Node(1).AddAdapter(sisci.Network)
	w.Node(2).AddAdapter(tcpnet.Network)
	w.Node(0).AddAdapter(tcpnet.Network)
	sess := core.NewSession(w)
	sci, err := sess.NewChannel(core.ChannelSpec{Name: "san", Driver: "sisci"})
	if err != nil {
		t.Fatal(err)
	}
	p := AttachMulti(sci[0])
	t.Cleanup(p.Close)
	if _, err := p.Bind(2); err == nil {
		t.Error("binding an unreachable rank must fail across all protocols")
	}
}
