package marcel

import (
	"testing"

	"madeleine2/internal/core"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/vclock"
)

func channelPair(t *testing.T) map[int]*core.Channel {
	t.Helper()
	w := simnet.NewWorld(2)
	w.Node(0).AddAdapter(sisci.Network)
	w.Node(1).AddAdapter(sisci.Network)
	sess := core.NewSession(w)
	chans, err := sess.NewChannel(core.ChannelSpec{Name: "marcel", Driver: "sisci"})
	if err != nil {
		t.Fatal(err)
	}
	return chans
}

// sendAt ships one n-byte message whose sender clock starts at `at`, so
// the arrival lands at a controlled virtual time.
func sendAt(t *testing.T, chans map[int]*core.Channel, at vclock.Time, n int) {
	t.Helper()
	a := vclock.NewActor("sender")
	a.SetNow(at)
	conn, err := chans[0].BeginPacking(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Pack(make([]byte, n), core.SendCheaper, core.ReceiveExpress); err != nil {
		t.Fatal(err)
	}
	if err := conn.EndPacking(); err != nil {
		t.Fatal(err)
	}
}

// receive runs one policy-wrapped receive with the receiver ready at 0.
func receive(t *testing.T, chans map[int]*core.Channel, pol Policy, n int) (*Listener, vclock.Time) {
	t.Helper()
	l := NewListener(chans[1], pol, Config{})
	r := vclock.NewActor("recv")
	conn, err := l.Await(r)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n)
	if err := conn.Unpack(buf, core.SendCheaper, core.ReceiveExpress); err != nil {
		t.Fatal(err)
	}
	if err := conn.EndUnpacking(); err != nil {
		t.Fatal(err)
	}
	return l, r.Now()
}

func TestPollingBurnsCPUForLowLatency(t *testing.T) {
	chans := channelPair(t)
	// Arrival well after the receiver is ready: a 300 µs wait.
	sendAt(t, chans, vclock.Micros(300), 16)
	l, done := receive(t, chans, Polling, 16)
	st := l.Stats()
	if st.Receives != 1 || st.Waited != 1 || st.Interrupts != 0 {
		t.Errorf("stats = %+v", st)
	}
	// CPU burnt ≈ the whole wait.
	if st.CPUBusy < vclock.Micros(295) {
		t.Errorf("polling must burn the wait: CPUBusy = %v", st.CPUBusy)
	}
	// Latency added: only the half poll period.
	cfg := DefaultConfig()
	if st.AddedLat != cfg.PollPeriod/2 {
		t.Errorf("added latency = %v, want %v", st.AddedLat, cfg.PollPeriod/2)
	}
	if done < vclock.Micros(300) {
		t.Errorf("completion %v before the arrival", done)
	}
}

func TestInterruptFreesCPUAtLatencyCost(t *testing.T) {
	chans := channelPair(t)
	sendAt(t, chans, vclock.Micros(300), 16)
	l, _ := receive(t, chans, Interrupt, 16)
	st := l.Stats()
	if st.CPUBusy != 0 {
		t.Errorf("interrupt mode must not burn CPU: %v", st.CPUBusy)
	}
	if st.Interrupts != 1 || st.AddedLat != DefaultConfig().IRQLatency {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdaptiveCatchesFastMessagesInSpin(t *testing.T) {
	chans := channelPair(t)
	// Arrival within the 20 µs grace window (SISCI small ≈ 3.9 µs).
	sendAt(t, chans, 0, 16)
	l, _ := receive(t, chans, Adaptive, 16)
	st := l.Stats()
	if st.Interrupts != 0 {
		t.Errorf("fast arrival must be caught spinning: %+v", st)
	}
	if st.AddedLat != DefaultConfig().PollPeriod/2 {
		t.Errorf("added latency = %v", st.AddedLat)
	}
	if st.CPUBusy > DefaultConfig().Spin {
		t.Errorf("CPU burnt %v exceeds the spin window", st.CPUBusy)
	}
}

func TestAdaptiveFallsBackToInterrupt(t *testing.T) {
	chans := channelPair(t)
	sendAt(t, chans, vclock.Micros(500), 16)
	l, done := receive(t, chans, Adaptive, 16)
	st := l.Stats()
	cfg := DefaultConfig()
	if st.Interrupts != 1 {
		t.Errorf("late arrival must arm the interrupt: %+v", st)
	}
	// CPU burnt: exactly the spin window, not the whole wait.
	if st.CPUBusy != cfg.Spin {
		t.Errorf("CPU burnt %v, want the %v spin window", st.CPUBusy, cfg.Spin)
	}
	if done < vclock.Micros(500)+cfg.IRQLatency {
		t.Errorf("completion %v misses the IRQ cost", done)
	}
}

func TestPolicyTradeoffOrdering(t *testing.T) {
	// For a late arrival: polling has the best latency and the worst CPU,
	// interrupt the reverse, adaptive in between on both axes.
	results := map[Policy]Stats{}
	for _, pol := range []Policy{Polling, Interrupt, Adaptive} {
		chans := channelPair(t)
		sendAt(t, chans, vclock.Micros(400), 16)
		l, _ := receive(t, chans, pol, 16)
		results[pol] = l.Stats()
	}
	if !(results[Polling].AddedLat < results[Adaptive].AddedLat ||
		results[Polling].AddedLat < results[Interrupt].AddedLat) {
		t.Errorf("polling must win latency: %+v", results)
	}
	if !(results[Interrupt].CPUBusy < results[Adaptive].CPUBusy &&
		results[Adaptive].CPUBusy < results[Polling].CPUBusy) {
		t.Errorf("CPU ordering wrong: poll %v > adaptive %v > interrupt %v expected",
			results[Polling].CPUBusy, results[Adaptive].CPUBusy, results[Interrupt].CPUBusy)
	}
}

func TestSubsequentUnpacksPassThrough(t *testing.T) {
	chans := channelPair(t)
	// Two-block message: only the first block pays the policy cost.
	a := vclock.NewActor("sender")
	go func() {
		conn, _ := chans[0].BeginPacking(a, 1)
		conn.Pack(make([]byte, 8), core.SendCheaper, core.ReceiveExpress)
		conn.Pack(make([]byte, 8), core.SendCheaper, core.ReceiveExpress)
		conn.EndPacking()
	}()
	l := NewListener(chans[1], Interrupt, Config{})
	r := vclock.NewActor("recv")
	conn, err := l.Await(r)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	conn.Unpack(buf, core.SendCheaper, core.ReceiveExpress)
	after1 := l.Stats().AddedLat
	conn.Unpack(buf, core.SendCheaper, core.ReceiveExpress)
	conn.EndUnpacking()
	if l.Stats().AddedLat != after1 {
		t.Error("second unpack must not pay the policy cost again")
	}
	if l.Stats().Interrupts != 1 {
		t.Errorf("interrupts = %d", l.Stats().Interrupts)
	}
}

func TestPolicyNames(t *testing.T) {
	if Polling.String() != "polling" || Interrupt.String() != "interrupt" || Adaptive.String() != "adaptive" {
		t.Error("policy names broken")
	}
	l := NewListener(nil, Adaptive, Config{})
	if l.Policy() != Adaptive {
		t.Error("Policy() broken")
	}
}
