// Package marcel implements the paper's closing line of work: "the
// integration of Madeleine II with our user-level multithreading library
// Marcel by the design and development of advanced adaptive
// polling/interruption network interaction mechanisms" (§7).
//
// The question it answers: what should a thread do while a message has
// not arrived yet?
//
//   - Polling: spin on the network. Minimal added latency (half a poll
//     period on average), but the CPU is burnt for the whole wait — other
//     threads of the PM2-style runtime starve.
//   - Interrupt: block and let the NIC raise an interrupt. The CPU is
//     free for other threads, but every wakeup pays the kernel's
//     interrupt-and-reschedule latency.
//   - Adaptive: spin for a short grace window (messages in RPC-style
//     runtimes usually answer quickly), then arm the interrupt — the
//     spin-then-block policy Marcel used.
//
// A Listener wraps a Madeleine channel's receive side with one of these
// policies and accounts both the added latency and the CPU time burnt
// while waiting, so the trade-off is measurable (see the
// BenchmarkAblationPolling workload).
package marcel

import (
	"fmt"

	"madeleine2/internal/core"
	"madeleine2/internal/vclock"
)

// Policy selects the network interaction mechanism.
type Policy int

const (
	// Polling spins on the network until the message arrives.
	Polling Policy = iota
	// Interrupt blocks; the arrival pays the interrupt latency.
	Interrupt
	// Adaptive spins for the grace window, then arms the interrupt.
	Adaptive
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Polling:
		return "polling"
	case Interrupt:
		return "interrupt"
	default:
		return "adaptive"
	}
}

// Config holds the mechanism's cost parameters.
type Config struct {
	// PollPeriod is the spacing of network polls while spinning; an
	// arrival waits half a period on average (we charge the half-period).
	PollPeriod vclock.Time
	// IRQLatency is the interrupt-plus-reschedule wakeup cost (a kernel
	// round through the Linux 2.2 of the testbed).
	IRQLatency vclock.Time
	// Spin is the adaptive policy's grace window.
	Spin vclock.Time
}

// DefaultConfig carries era-plausible values.
func DefaultConfig() Config {
	return Config{
		PollPeriod: vclock.Micros(1),
		IRQLatency: vclock.Micros(12),
		Spin:       vclock.Micros(20),
	}
}

// Stats accumulates a listener's accounting.
type Stats struct {
	Receives   int
	Waited     int         // receives that found no message ready
	Interrupts int         // wakeups that paid the IRQ latency
	CPUBusy    vclock.Time // CPU burnt spinning (unavailable to other threads)
	AddedLat   vclock.Time // latency added by the mechanism
}

// Listener wraps one channel's receive side with a policy.
type Listener struct {
	ch    *core.Channel
	pol   Policy
	cfg   Config
	stats Stats
}

// NewListener builds a listener; a zero Config selects DefaultConfig.
func NewListener(ch *core.Channel, pol Policy, cfg Config) *Listener {
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	return &Listener{ch: ch, pol: pol, cfg: cfg}
}

// Stats reports the accumulated accounting.
func (l *Listener) Stats() Stats { return l.stats }

// Policy reports the listener's mechanism.
func (l *Listener) Policy() Policy { return l.pol }

// Conn is a policy-wrapped incoming message: its first Unpack applies the
// mechanism's latency and CPU accounting, subsequent calls pass through.
type Conn struct {
	*core.Connection
	l     *Listener
	t0    vclock.Time
	first bool
}

// Await begins the reception of the next message under the policy.
func (l *Listener) Await(a *vclock.Actor) (*Conn, error) {
	t0 := a.Now()
	conn, err := l.ch.BeginUnpacking(a)
	if err != nil {
		return nil, err
	}
	l.stats.Receives++
	return &Conn{Connection: conn, l: l, t0: t0, first: true}, nil
}

// Unpack extracts a block; the first extraction of the message charges
// the policy's waiting costs.
func (c *Conn) Unpack(dst []byte, sm core.SendMode, rm core.RecvMode) error {
	if err := c.Connection.Unpack(dst, sm, rm); err != nil {
		return err
	}
	if !c.first {
		return nil
	}
	c.first = false
	a := c.actorOf()
	waited := a.Now() - c.t0
	if waited < 0 {
		waited = 0
	}
	l := c.l
	if waited > 0 {
		l.stats.Waited++
	}
	switch l.pol {
	case Polling:
		// The whole wait is burnt spinning; the arrival is noticed half a
		// poll period late on average.
		l.stats.CPUBusy += waited + l.cfg.PollPeriod/2
		l.stats.AddedLat += l.cfg.PollPeriod / 2
		a.Advance(l.cfg.PollPeriod / 2)
	case Interrupt:
		// The CPU was free, but the wakeup pays the interrupt latency —
		// even an already-arrived message is noticed through the kernel.
		l.stats.Interrupts++
		l.stats.AddedLat += l.cfg.IRQLatency
		a.Advance(l.cfg.IRQLatency)
	case Adaptive:
		if waited <= l.cfg.Spin {
			// Caught within the grace window: poll-like costs.
			l.stats.CPUBusy += waited + l.cfg.PollPeriod/2
			l.stats.AddedLat += l.cfg.PollPeriod / 2
			a.Advance(l.cfg.PollPeriod / 2)
		} else {
			// Spun the window for nothing, then slept until the IRQ.
			l.stats.CPUBusy += l.cfg.Spin
			l.stats.Interrupts++
			l.stats.AddedLat += l.cfg.IRQLatency
			a.Advance(l.cfg.IRQLatency)
		}
	default:
		panic(fmt.Sprintf("marcel: unknown policy %d", l.pol))
	}
	return nil
}

// actorOf exposes the wrapped connection's clock.
func (c *Conn) actorOf() *vclock.Actor { return c.Connection.Actor() }
