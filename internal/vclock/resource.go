package vclock

import "sync"

// Resource models a serially reusable device engine: a NIC transmit engine,
// a DMA queue, a memory-copy unit. At most one virtual transfer occupies the
// resource at a time; an acquisition that arrives while the resource is busy
// is queued in virtual time (start = max(request, freeAt)).
//
// Resource is safe for concurrent use. Note that when several goroutines race
// to acquire, the assignment order can vary; users that need deterministic
// results must serialize acquisitions through their own protocol (the
// simulated NIC drivers do: each engine is driven by a single goroutine, or
// by goroutines already ordered by a FIFO message queue).
type Resource struct {
	mu     sync.Mutex
	name   string
	freeAt Time
	busy   Time // total occupied virtual time, for utilization reports
	count  int64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for dur starting no earlier than at,
// and returns the actual [start, end) interval of the occupation.
func (r *Resource) Acquire(at, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = Max(at, r.freeAt)
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.count++
	return start, end
}

// FreeAt reports the earliest virtual time at which the resource is idle.
func (r *Resource) FreeAt() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.freeAt
}

// BusyTime reports the total virtual time the resource has been occupied.
func (r *Resource) BusyTime() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Acquisitions reports how many transfers have occupied the resource.
func (r *Resource) Acquisitions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Reset returns the resource to the idle state at the epoch.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.freeAt, r.busy, r.count = 0, 0, 0
}
