package vclock

// Actor is a thread of control with its own virtual clock: an application
// thread, a forwarding-pipeline thread on a gateway, or a benchmark driver.
// An Actor is owned by exactly one goroutine; it is not safe for concurrent
// use. Cross-actor synchronization happens through message arrival stamps
// (Sync) and through shared Resources, both of which are order-insensitive
// (max/plus), so end-state clocks do not depend on goroutine scheduling.
type Actor struct {
	name string
	now  Time
}

// NewActor returns an actor starting at the session epoch.
func NewActor(name string) *Actor { return &Actor{name: name} }

// Name reports the actor's diagnostic name.
func (a *Actor) Name() string { return a.name }

// Now reports the actor's current virtual time.
func (a *Actor) Now() Time { return a.now }

// Advance moves the actor's clock forward by d. Negative durations are
// ignored: virtual time never runs backwards.
func (a *Actor) Advance(d Time) {
	if d > 0 {
		a.now += d
	}
}

// Sync moves the actor's clock forward to t if t is later than now; it is
// the "wait until" operation used when receiving a message stamped t.
func (a *Actor) Sync(t Time) {
	if t > a.now {
		a.now = t
	}
}

// SetNow forces the clock; used only by tests and by session reset.
func (a *Actor) SetNow(t Time) { a.now = t }
