// Package vclock provides the virtual-time primitives used by the simulated
// cluster hardware.
//
// Everything in this repository moves real bytes through real Go code, but
// *time* is virtual: every thread of control is an Actor holding a scalar
// clock, every serialized device engine (a NIC send engine, a DMA queue, a
// PCI bus slot) is a Resource with a "free at" horizon, and messages carry
// virtual arrival stamps. An operation advances the initiating actor's clock
// by a modeled duration; a receiver synchronizes its clock to the maximum of
// its own time and the message's arrival time. Because clock updates are
// max/plus operations over a fixed dependency graph, measured virtual times
// are deterministic regardless of goroutine scheduling.
package vclock

import "fmt"

// Time is a point in (or duration of) virtual time, in nanoseconds.
// The zero Time is the session epoch.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros returns a duration of n microseconds. Fractional microseconds are
// preserved with nanosecond resolution.
func Micros(n float64) Time { return Time(n * float64(Microsecond)) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with microsecond units, which is the natural scale for
// the latencies in the paper.
func (t Time) String() string { return fmt.Sprintf("%.3fµs", t.Microseconds()) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// TimeForBytes returns the time needed to move n bytes at rate mbps,
// where 1 MB/s = 1e6 bytes per second (the convention used throughout the
// paper's figures). A non-positive rate yields zero time; callers model
// "infinitely fast" components that way.
func TimeForBytes(n int, mbps float64) Time {
	if mbps <= 0 || n <= 0 {
		return 0
	}
	return Time(float64(n) * 1000.0 / mbps)
}

// MBps converts n bytes moved in d of virtual time into a bandwidth in
// MB/s (1 MB = 1e6 bytes). It returns 0 for non-positive durations.
func MBps(n int, d Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) * 1000.0 / float64(d)
}
