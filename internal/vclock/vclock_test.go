package vclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := Micros(3.9); got != 3900 {
		t.Errorf("Micros(3.9) = %d, want 3900", got)
	}
	if got := Time(3900).Microseconds(); got != 3.9 {
		t.Errorf("Microseconds() = %g, want 3.9", got)
	}
	if got := Second.Seconds(); got != 1.0 {
		t.Errorf("Second.Seconds() = %g, want 1", got)
	}
	if got := Time(2500).String(); got != "2.500µs" {
		t.Errorf("String() = %q", got)
	}
}

func TestTimeForBytes(t *testing.T) {
	// 126 MB/s moving 126e6 bytes takes exactly one second.
	if got := TimeForBytes(126_000_000, 126); got != Second {
		t.Errorf("TimeForBytes = %v, want 1s", got)
	}
	// 1 kB at 1 MB/s takes 1024 µs.
	if got := TimeForBytes(1024, 1); got != 1024*Microsecond {
		t.Errorf("TimeForBytes(1024,1) = %v", got)
	}
	if got := TimeForBytes(0, 100); got != 0 {
		t.Errorf("zero bytes should take zero time, got %v", got)
	}
	if got := TimeForBytes(100, 0); got != 0 {
		t.Errorf("zero rate must yield zero time, got %v", got)
	}
	if got := TimeForBytes(-5, 100); got != 0 {
		t.Errorf("negative size must yield zero time, got %v", got)
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(126_000_000, Second); got != 126 {
		t.Errorf("MBps = %g, want 126", got)
	}
	if got := MBps(1000, 0); got != 0 {
		t.Errorf("MBps with zero duration = %g, want 0", got)
	}
}

func TestTimeForBytesRoundTrip(t *testing.T) {
	// Property: MBps(n, TimeForBytes(n, r)) ≈ r for positive inputs.
	f := func(n uint16, r uint8) bool {
		size := int(n) + 1
		rate := float64(r)/4 + 0.5
		d := TimeForBytes(size, rate)
		got := MBps(size, d)
		return got > rate*0.95 && got < rate*1.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Max/Min broken")
	}
}

func TestActor(t *testing.T) {
	a := NewActor("node0")
	if a.Name() != "node0" {
		t.Errorf("Name = %q", a.Name())
	}
	if a.Now() != 0 {
		t.Errorf("fresh actor clock = %v, want 0", a.Now())
	}
	a.Advance(Micros(5))
	if a.Now() != Micros(5) {
		t.Errorf("after Advance: %v", a.Now())
	}
	a.Advance(-Micros(100)) // ignored
	if a.Now() != Micros(5) {
		t.Errorf("negative Advance must be ignored, clock = %v", a.Now())
	}
	a.Sync(Micros(3)) // in the past: no-op
	if a.Now() != Micros(5) {
		t.Errorf("Sync to the past moved clock to %v", a.Now())
	}
	a.Sync(Micros(9))
	if a.Now() != Micros(9) {
		t.Errorf("Sync to the future: clock = %v, want 9µs", a.Now())
	}
	a.SetNow(0)
	if a.Now() != 0 {
		t.Errorf("SetNow: %v", a.Now())
	}
}

func TestActorSyncIdempotentCommutative(t *testing.T) {
	// Property: applying a set of Sync stamps in any order yields max.
	f := func(stamps []int32) bool {
		a := NewActor("p")
		b := NewActor("q")
		var want Time
		for _, s := range stamps {
			st := Time(s)
			a.Sync(st)
			if st > want {
				want = st
			}
		}
		for i := len(stamps) - 1; i >= 0; i-- {
			b.Sync(Time(stamps[i]))
		}
		if want < 0 {
			want = 0
		}
		return a.Now() == want && b.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("nic-tx")
	s1, e1 := r.Acquire(0, Micros(10))
	if s1 != 0 || e1 != Micros(10) {
		t.Fatalf("first acquisition [%v,%v)", s1, e1)
	}
	// Requested before the resource frees: queued in virtual time.
	s2, e2 := r.Acquire(Micros(4), Micros(10))
	if s2 != Micros(10) || e2 != Micros(20) {
		t.Fatalf("second acquisition [%v,%v), want [10µs,20µs)", s2, e2)
	}
	// Requested after it frees: starts at request time.
	s3, e3 := r.Acquire(Micros(50), Micros(5))
	if s3 != Micros(50) || e3 != Micros(55) {
		t.Fatalf("third acquisition [%v,%v), want [50µs,55µs)", s3, e3)
	}
	if r.FreeAt() != Micros(55) {
		t.Errorf("FreeAt = %v", r.FreeAt())
	}
	if r.BusyTime() != Micros(25) {
		t.Errorf("BusyTime = %v, want 25µs", r.BusyTime())
	}
	if r.Acquisitions() != 3 {
		t.Errorf("Acquisitions = %d", r.Acquisitions())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.BusyTime() != 0 || r.Acquisitions() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestResourceNegativeDuration(t *testing.T) {
	r := NewResource("x")
	s, e := r.Acquire(Micros(1), -Micros(5))
	if s != Micros(1) || e != Micros(1) {
		t.Errorf("negative duration: [%v,%v)", s, e)
	}
}

func TestResourceTotalBusyInvariant(t *testing.T) {
	// Property: regardless of request pattern, total busy time equals the
	// sum of requested durations, and freeAt >= every interval end.
	f := func(reqs []uint16) bool {
		r := NewResource("p")
		var sum Time
		var lastEnd Time
		for _, q := range reqs {
			at := Time(q % 997)
			dur := Time(q%251) * Microsecond / 10
			_, end := r.Acquire(at, dur)
			sum += dur
			if end < lastEnd {
				return false // serial resource must be monotone
			}
			lastEnd = end
		}
		return r.BusyTime() == sum && r.FreeAt() == lastEnd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceConcurrentSafety(t *testing.T) {
	// Concurrent acquisitions must preserve the busy-time invariant.
	r := NewResource("shared")
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Acquire(0, Microsecond)
			}
		}()
	}
	wg.Wait()
	if got, want := r.BusyTime(), Time(workers*per)*Microsecond; got != want {
		t.Errorf("BusyTime = %v, want %v", got, want)
	}
	if r.FreeAt() != r.BusyTime() {
		t.Errorf("FreeAt = %v, want %v (all requests at epoch)", r.FreeAt(), r.BusyTime())
	}
}
