package simnet

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Error("TryPop on empty queue must fail")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[string]()
	q.Push("a")
	q.Push("b")
	q.Close()
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("Pop after close = %q,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != "b" {
		t.Fatalf("Pop after close = %q,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Error("drained closed queue must report !ok")
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue[int]()
	done := make(chan int)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	q.Push(42)
	if got := <-done; got != 42 {
		t.Errorf("blocking Pop = %d", got)
	}
}

func TestQueuePushAfterClosePanics(t *testing.T) {
	q := NewQueue[int]()
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("Push after Close must panic")
		}
	}()
	q.Push(1)
}

func TestQueueConcurrentProducersPreserveCount(t *testing.T) {
	q := NewQueue[int]()
	const producers, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(i)
			}
		}()
	}
	wg.Wait()
	if q.Len() != producers*per {
		t.Errorf("Len = %d, want %d", q.Len(), producers*per)
	}
}

func TestWorldTopology(t *testing.T) {
	w := NewWorld(3)
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	a0 := w.Node(0).AddAdapter("myrinet")
	a1 := w.Node(1).AddAdapter("myrinet")
	w.Node(1).AddAdapter("sci")
	if a0.Network() != "myrinet" || a0.Index() != 0 || a0.Node().ID() != 0 {
		t.Errorf("adapter identity wrong: %s/%d on node %d", a0.Network(), a0.Index(), a0.Node().ID())
	}
	// Second adapter on the same network gets the next index.
	b0 := w.Node(0).AddAdapter("myrinet")
	if b0.Index() != 1 {
		t.Errorf("second adapter index = %d", b0.Index())
	}
	got, err := w.Node(0).Adapter("myrinet", 1)
	if err != nil || got != b0 {
		t.Errorf("Adapter lookup: %v, %v", got, err)
	}
	if _, err := w.Node(0).Adapter("sci", 0); err == nil {
		t.Error("node 0 must not have an sci adapter")
	}
	if _, err := w.Node(2).Adapter("myrinet", 0); err == nil {
		t.Error("node 2 must not have adapters")
	}
	peer, err := a0.Peer(1, 0)
	if err != nil || peer != a1 {
		t.Errorf("Peer = %v, %v", peer, err)
	}
	nets := w.Node(1).Networks()
	if len(nets) != 2 {
		t.Errorf("node 1 networks = %v", nets)
	}
	if w.Node(1).Bus() == nil {
		t.Error("node must have a default bus model")
	}
}

func TestWorldBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Node(5) on a 2-node world must panic")
		}
	}()
	NewWorld(2).Node(5)
}

func TestDeliverMovesRealBytes(t *testing.T) {
	w := NewWorld(2)
	a0 := w.Node(0).AddAdapter("net")
	a1 := w.Node(1).AddAdapter("net")
	payload := []byte("hello, cluster")
	a0.Deliver(a1, 7, Packet{Data: payload, Arrive: 123, Tag: 9})
	p, ok := a1.RxLane(0, 7).Pop()
	if !ok || !bytes.Equal(p.Data, payload) || p.Arrive != 123 || p.Tag != 9 {
		t.Fatalf("delivered packet = %+v, ok=%v", p, ok)
	}
	bi, bo, pi, po := a1.Stats()
	if bi != int64(len(payload)) || pi != 1 || bo != 0 || po != 0 {
		t.Errorf("receiver stats = %d/%d/%d/%d", bi, bo, pi, po)
	}
	bi, bo, pi, po = a0.Stats()
	if bo != int64(len(payload)) || po != 1 || bi != 0 || pi != 0 {
		t.Errorf("sender stats = %d/%d/%d/%d", bi, bo, pi, po)
	}
}

func TestLanesAreIndependentAndOrdered(t *testing.T) {
	w := NewWorld(2)
	a0 := w.Node(0).AddAdapter("net")
	a1 := w.Node(1).AddAdapter("net")
	for i := 0; i < 10; i++ {
		a0.Deliver(a1, i%2, Packet{Tag: uint64(i)})
	}
	for lane := 0; lane < 2; lane++ {
		prev := int64(-1)
		q := a1.RxLane(0, lane)
		for q.Len() > 0 {
			p, _ := q.Pop()
			if int64(p.Tag) <= prev {
				t.Errorf("lane %d out of order: %d after %d", lane, p.Tag, prev)
			}
			if int(p.Tag)%2 != lane {
				t.Errorf("lane %d got tag %d", lane, p.Tag)
			}
			prev = int64(p.Tag)
		}
	}
}

func TestSegmentWritePollRead(t *testing.T) {
	w := NewWorld(2)
	owner := w.Node(0).AddAdapter("sci")
	remote := w.Node(1).AddAdapter("sci")
	owner.CreateSegment(42, 4096)

	seg, err := remote.ConnectSegment(0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if seg.ID() != 42 || seg.Size() != 4096 {
		t.Fatalf("segment identity: id=%d size=%d", seg.ID(), seg.Size())
	}
	seg.Write(128, []byte("payload"), WriteRecord{Arrive: 555, Tag: 3})
	rec, ok := seg.Poll()
	if !ok || rec.Off != 128 || rec.Len != 7 || rec.Arrive != 555 || rec.Tag != 3 {
		t.Fatalf("record = %+v, ok=%v", rec, ok)
	}
	dst := make([]byte, 7)
	seg.Read(128, dst)
	if string(dst) != "payload" {
		t.Errorf("Read = %q", dst)
	}
	if _, ok := seg.TryPoll(); ok {
		t.Error("no further records expected")
	}
	seg.Release()
	if _, ok := seg.Poll(); ok {
		t.Error("released segment must drain to !ok")
	}
}

func TestSegmentErrors(t *testing.T) {
	w := NewWorld(2)
	owner := w.Node(0).AddAdapter("sci")
	remote := w.Node(1).AddAdapter("sci")
	owner.CreateSegment(1, 64)
	if _, err := remote.ConnectSegment(0, 0, 99); err == nil {
		t.Error("connecting a nonexistent segment must fail")
	}
	if _, err := remote.ConnectSegment(0, 3, 1); err == nil {
		t.Error("connecting via a nonexistent peer adapter must fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate segment id must panic")
			}
		}()
		owner.CreateSegment(1, 64)
	}()
	seg, _ := remote.ConnectSegment(0, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range write must panic")
			}
		}()
		seg.Write(60, []byte("toolong"), WriteRecord{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range read must panic")
			}
		}()
		seg.Read(-1, make([]byte, 4))
	}()
}

func TestSegmentWriteOrderIsPollOrder(t *testing.T) {
	// Property: records are polled in exactly the order writes were issued.
	f := func(offs []uint8) bool {
		seg := NewSegment(7, 512)
		for i, o := range offs {
			seg.Write(int(o), []byte{byte(i)}, WriteRecord{Tag: uint64(i)})
		}
		for i := range offs {
			rec, ok := seg.Poll()
			if !ok || rec.Tag != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFaultInjection(t *testing.T) {
	w := NewWorld(2)
	a0 := w.Node(0).AddAdapter("net")
	a1 := w.Node(1).AddAdapter("net")
	a0.CorruptNext()
	a0.Deliver(a1, 0, Packet{Data: []byte{1, 2, 3, 4}})
	a0.Deliver(a1, 0, Packet{Data: []byte{1, 2, 3, 4}})
	p1, _ := a1.RxLane(0, 0).Pop()
	p2, _ := a1.RxLane(0, 0).Pop()
	if bytes.Equal(p1.Data, []byte{1, 2, 3, 4}) {
		t.Error("armed fault must corrupt the first packet")
	}
	if !bytes.Equal(p2.Data, []byte{1, 2, 3, 4}) {
		t.Error("fault must be single-shot")
	}
	// Empty payloads pass through without panicking.
	a0.CorruptNext()
	a0.Deliver(a1, 0, Packet{})
	if p, _ := a1.RxLane(0, 0).Pop(); p.Data != nil {
		t.Error("empty packet must stay empty")
	}
}
