package simnet

import "sync"

// FaultPlan programs a continuous fault process on an adapter: every
// eligible transfer the adapter injects into the fabric — packet
// deliveries through Deliver and remote writes into segments the adapter
// exports — draws from a seeded random stream and may be corrupted (one
// byte flipped), dropped (the whole frame scrambled beyond recognition,
// the simulated analogue of a frame lost to a damaged preamble: the bytes
// still occupy the wire, but nothing above the NIC can make sense of
// them), or delayed. All effects are in virtual time; an adapter with no
// plan installed pays a single atomic load per transfer.
//
// Drops deliberately scramble rather than remove: the simulated drivers
// implement their own flow control (credits, rendezvous) and a silently
// vanished frame would wedge them in ways no real lossy fabric does at
// this layer. Scrambling destroys the payload, the framing magic and the
// checksums of everything above, which is what the reliability machinery
// has to detect and repair.
type FaultPlan struct {
	// Seed makes the fault stream deterministic: the same plan over the
	// same delivery sequence produces the same faults. Each adapter mixes
	// its identity into the seed so a plan shared by a whole world does
	// not strike every adapter in lockstep.
	Seed int64
	// Corrupt is the per-transfer probability of a single flipped byte.
	Corrupt float64
	// Drop is the per-transfer probability of a scrambled frame.
	Drop float64
	// Delay is a fixed extra delivery delay; Jitter adds a uniform random
	// extra in [0, Jitter). Both shift the transfer's arrival stamp.
	Delay  int64 // vclock.Time
	Jitter int64 // vclock.Time
	// MinBytes exempts transfers smaller than this from every fault
	// (0 selects DefaultFaultMinBytes). The floor models the reality that
	// tiny control frames are far less exposed than bulk payloads, and it
	// keeps the simulated drivers' own control traffic — credit returns,
	// acknowledgment tags — out of the blast radius, since those protocols
	// predate the fault machinery and are reliable by construction.
	MinBytes int
	// BurstStart/BurstEnd define a virtual-time window during which every
	// eligible transfer injected is scrambled — a burst outage or
	// partition. The window is inactive unless BurstEnd > BurstStart.
	BurstStart int64 // vclock.Time
	BurstEnd   int64 // vclock.Time
}

// DefaultFaultMinBytes is the eligibility floor when a plan leaves
// MinBytes zero: big enough to spare every driver control frame and the
// forwarding layer's packet headers, small enough to catch any MTU-sized
// payload.
const DefaultFaultMinBytes = 64

// FaultStats counts the faults an adapter has injected.
type FaultStats struct {
	Corrupted int64 // single-byte flips
	Dropped   int64 // scrambled frames (probability and burst window)
	Delayed   int64 // transfers whose arrival was shifted
}

// faultState is an armed plan plus its mixed seed and counters. There is
// no shared random stream: every transfer derives its own draws from the
// seed and its observable coordinates (injection time, size, payload
// probes), so the fates are independent of the order in which concurrent
// sends reach strike and two worlds running the same plan over the same
// traffic are byte-identical even when their goroutines interleave
// differently.
type faultState struct {
	plan FaultPlan
	seed uint64

	mu        sync.Mutex
	corrupted int64
	dropped   int64
	delayed   int64
}

// SetFaults installs (or, with nil, removes) the adapter's fault plan.
// Installing a plan resets the fault counters.
func (a *Adapter) SetFaults(p *FaultPlan) {
	if p == nil {
		a.faults.Store(nil)
		return
	}
	fs := &faultState{plan: *p}
	// Mix the adapter's identity into the seed: a shared plan still gives
	// every adapter its own deterministic fault process.
	seed := p.Seed
	seed = seed*1000003 + int64(a.node.id)*31 + int64(a.index)
	for _, c := range a.network {
		seed = seed*131 + int64(c)
	}
	fs.seed = mix64(uint64(seed))
	a.faults.Store(fs)
}

// FaultStats reports the faults injected since the plan was installed.
func (a *Adapter) FaultStats() FaultStats {
	fs := a.faults.Load()
	if fs == nil {
		return FaultStats{}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return FaultStats{Corrupted: fs.corrupted, Dropped: fs.dropped, Delayed: fs.delayed}
}

// strike draws this transfer's fate. It returns the (possibly replaced)
// data slice and an extra delay to add to the arrival stamp; the input
// slice is never modified in place. inject is the transfer's virtual
// injection time, tested against the burst window.
func (fs *faultState) strike(data []byte, inject int64) ([]byte, int64) {
	min := fs.plan.MinBytes
	if min == 0 {
		min = DefaultFaultMinBytes
	}
	if len(data) < min {
		return data, 0
	}
	// Derive this transfer's private draw sequence from the mixed seed and
	// the transfer's own coordinates — no shared stream, no lock, no order
	// sensitivity. Identical transfers injected at the same virtual time
	// share a fate, which is exactly the reproducibility the plan promises.
	x := fs.seed
	x = mix64(x ^ uint64(inject))
	x = mix64(x ^ uint64(len(data)))
	x = mix64(x ^ probe(data))
	draw := func() uint64 {
		x += 0x9e3779b97f4a7c15
		return mix64(x)
	}

	var extra int64
	delayed := false
	if fs.plan.Delay > 0 || fs.plan.Jitter > 0 {
		extra = fs.plan.Delay
		if fs.plan.Jitter > 0 {
			extra += int64(draw() % uint64(fs.plan.Jitter))
		}
		delayed = extra > 0
	}
	burst := fs.plan.BurstEnd > fs.plan.BurstStart &&
		inject >= fs.plan.BurstStart && inject < fs.plan.BurstEnd
	dropped := burst || (fs.plan.Drop > 0 && unit(draw()) < fs.plan.Drop)
	corrupted := !dropped && fs.plan.Corrupt > 0 && unit(draw()) < fs.plan.Corrupt
	flip := draw()

	fs.mu.Lock()
	if delayed {
		fs.delayed++
	}
	if dropped {
		fs.dropped++
	} else if corrupted {
		fs.corrupted++
	}
	fs.mu.Unlock()

	switch {
	case dropped:
		return scramble(data), extra
	case corrupted:
		cp := append([]byte(nil), data...)
		cp[flip%uint64(len(cp))] ^= 0xFF
		return cp, extra
	}
	return data, extra
}

// mix64 is the splitmix64 finalizer: a cheap bijective 64-bit mixer with
// full avalanche, plenty for fault probabilities.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a draw onto [0,1) with 53 bits of precision.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// probe folds the head and tail bytes of the payload into one word, so
// same-sized transfers injected at the same virtual time still draw
// independent fates unless they are bytewise identical at the edges.
func probe(data []byte) uint64 {
	var h, t uint64
	for i := 0; i < 8 && i < len(data); i++ {
		h = h<<8 | uint64(data[i])
	}
	for i := len(data) - 8; i < len(data); i++ {
		if i >= 0 {
			t = t<<8 | uint64(data[i])
		}
	}
	return mix64(h) ^ t
}

// scramble returns a copy of data deterministically garbaged end to end —
// the carcass of a dropped frame. Every byte changes (modulo the one
// position per 256 where the mixing constant degenerates), so multi-byte
// magics and checksums above cannot survive.
func scramble(data []byte) []byte {
	cp := make([]byte, len(data))
	for i, b := range data {
		cp[i] = ^b ^ byte(i*131)
	}
	return cp
}
