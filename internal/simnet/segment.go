package simnet

import (
	"fmt"
	"sync"
)

// Segment is an exported memory region in the SCI style: the owning node
// creates it; remote nodes connect and write into it with PIO; the owner
// observes writes by polling (modeled as blocking on the segment's write
// records). Data is real shared memory — a remote Write lands actual bytes
// that the owner later copies out — while the write-visible time is a
// virtual stamp computed by the writing driver.
type Segment struct {
	id    uint32
	owner *Adapter // exporting adapter; nil for bare NewSegment segments
	mu    sync.Mutex
	buf   []byte
	recs  *Queue[WriteRecord]
}

// WriteRecord describes one remote write, in order of visibility.
type WriteRecord struct {
	Off    int
	Len    int
	Inject int64 // vclock.Time
	Arrive int64 // vclock.Time: write fully visible to the owner
	Tag    uint64
}

// NewSegment allocates a size-byte segment.
func NewSegment(id uint32, size int) *Segment {
	return &Segment{id: id, buf: make([]byte, size), recs: NewQueue[WriteRecord]()}
}

// NewSegmentOver exports buf itself as a segment: remote writes land
// directly in the caller's memory. This is the zero-copy receive primitive
// an RDMA-style driver builds registered regions from — the segment does
// not own the bytes, the registering application does.
func NewSegmentOver(id uint32, buf []byte) *Segment {
	return &Segment{id: id, buf: buf, recs: NewQueue[WriteRecord]()}
}

// ID reports the segment identifier.
func (s *Segment) ID() uint32 { return s.id }

// Size reports the segment length in bytes.
func (s *Segment) Size() int { return len(s.buf) }

// Write copies data into the segment at off and posts the write record.
// It panics on out-of-range writes: segment layout is driver-owned and a
// bad offset is a driver bug, the simulated analogue of corrupting a
// mapped region. Writes crossing the fabric into an adapter-exported
// segment pass through the owner's fault machinery — the segment is the
// receive side of an SCI-style interconnect, so this is where a fault
// plan strikes PIO traffic.
func (s *Segment) Write(off int, data []byte, rec WriteRecord) {
	if a := s.owner; a != nil {
		data = a.corruptOnce(data)
		if fs := a.faults.Load(); fs != nil {
			var extra int64
			data, extra = fs.strike(data, rec.Inject)
			rec.Arrive += extra
		}
	}
	s.mu.Lock()
	if off < 0 || off+len(data) > len(s.buf) {
		s.mu.Unlock()
		panic(fmt.Sprintf("simnet: segment %d write [%d,%d) out of range 0..%d",
			s.id, off, off+len(data), len(s.buf)))
	}
	copy(s.buf[off:], data)
	s.mu.Unlock()
	rec.Off, rec.Len = off, len(data)
	s.recs.Push(rec)
}

// Poll blocks for the next write record, in visibility order. ok is false
// once the segment has been released and drained.
func (s *Segment) Poll() (WriteRecord, bool) { return s.recs.Pop() }

// TryPoll is the non-blocking Poll.
func (s *Segment) TryPoll() (WriteRecord, bool) { return s.recs.TryPop() }

// Read copies len(dst) bytes starting at off out of the segment.
func (s *Segment) Read(off int, dst []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+len(dst) > len(s.buf) {
		panic(fmt.Sprintf("simnet: segment %d read [%d,%d) out of range 0..%d",
			s.id, off, off+len(dst), len(s.buf)))
	}
	copy(dst, s.buf[off:])
}

// Release closes the segment's record stream.
func (s *Segment) Release() { s.recs.Close() }

// segKey identifies an exported segment on an adapter.

// CreateSegment exports a new segment with the given id on the adapter.
// Creating a duplicate id is a driver bug and panics.
func (a *Adapter) CreateSegment(id uint32, size int) *Segment {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.segments == nil {
		a.segments = make(map[uint32]*Segment)
	}
	if _, dup := a.segments[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate segment %d on node %d/%s", id, a.node.id, a.network))
	}
	s := NewSegment(id, size)
	s.owner = a
	a.segments[id] = s
	return s
}

// CreateSegmentOver exports the caller's buf as segment id on the adapter,
// the registered-memory analogue of CreateSegment. Duplicate ids panic.
func (a *Adapter) CreateSegmentOver(id uint32, buf []byte) *Segment {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.segments == nil {
		a.segments = make(map[uint32]*Segment)
	}
	if _, dup := a.segments[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate segment %d on node %d/%s", id, a.node.id, a.network))
	}
	s := NewSegmentOver(id, buf)
	s.owner = a
	a.segments[id] = s
	return s
}

// RemoveSegment withdraws an exported segment so its id can be reused —
// the deregistration half of CreateSegmentOver's lifecycle. The segment's
// record stream is closed; a peer holding a stale *Segment can still
// write real bytes (the simulated analogue of DMA into unpinned memory),
// which is exactly the hazard drivers must fence with their own
// registration checks. Removing an id that is not exported is a no-op.
func (a *Adapter) RemoveSegment(id uint32) {
	a.mu.Lock()
	s := a.segments[id]
	delete(a.segments, id)
	a.mu.Unlock()
	if s != nil {
		s.Release()
	}
}

// ConnectSegment resolves a segment exported by the idx-th adapter of
// dstNode on this adapter's network — the SCIConnectSegment analogue.
func (a *Adapter) ConnectSegment(dstNode, idx int, id uint32) (*Segment, error) {
	peer, err := a.Peer(dstNode, idx)
	if err != nil {
		return nil, err
	}
	peer.mu.Lock()
	defer peer.mu.Unlock()
	s := peer.segments[id]
	if s == nil {
		return nil, fmt.Errorf("simnet: node %d/%s has no segment %d", dstNode, a.network, id)
	}
	return s, nil
}
