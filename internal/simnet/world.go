// Package simnet is the virtual cluster hardware underneath the simulated
// NIC drivers: nodes, network adapters, in-order packet lanes, and SCI-style
// exported memory segments. It moves real bytes (payloads are delivered
// verbatim and verified by the test suites above it) while time is virtual:
// packets carry arrival stamps computed by the drivers from the calibrated
// models in internal/model.
package simnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"madeleine2/internal/model"
	"madeleine2/internal/vclock"
)

// World is a set of simulated nodes and the fabrics connecting them. All
// adapters attached to the same network name form a full crossbar (the
// drivers' cost models include the per-hop wire time).
type World struct {
	mu    sync.Mutex
	nodes []*Node
}

// NewWorld returns a world with n nodes (ranks 0..n-1), each with a default
// PCI bus model.
func NewWorld(n int) *World {
	w := &World{}
	for i := 0; i < n; i++ {
		w.nodes = append(w.nodes, &Node{
			id:    i,
			world: w,
			bus:   model.DefaultPCI(),
		})
	}
	return w
}

// Size reports the number of nodes.
func (w *World) Size() int { return len(w.nodes) }

// Node returns the node with the given rank; it panics on a bad rank, which
// is a configuration error.
func (w *World) Node(rank int) *Node {
	if rank < 0 || rank >= len(w.nodes) {
		panic(fmt.Sprintf("simnet: no node %d in a %d-node world", rank, len(w.nodes)))
	}
	return w.nodes[rank]
}

// Node is one simulated host: a rank, a PCI bus model, and a set of network
// adapters keyed by network name.
type Node struct {
	id       int
	world    *World
	bus      *model.PCIBus
	mu       sync.Mutex
	adapters map[string][]*Adapter
}

// ID reports the node's rank in its world.
func (n *Node) ID() int { return n.id }

// Bus returns the node's PCI bus model.
func (n *Node) Bus() *model.PCIBus { return n.bus }

// SetBus replaces the node's PCI bus model (used by ablation benches).
func (n *Node) SetBus(b *model.PCIBus) { n.bus = b }

// AddAdapter attaches a new adapter to the named network and returns it.
// A node may have several adapters on the same network (the paper's
// multi-adapter support) and adapters on different networks (a gateway).
func (n *Node) AddAdapter(network string) *Adapter {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.adapters == nil {
		n.adapters = make(map[string][]*Adapter)
	}
	a := &Adapter{
		node:    n,
		network: network,
		index:   len(n.adapters[network]),
		tx:      vclock.NewResource(fmt.Sprintf("n%d/%s%d/tx", n.id, network, len(n.adapters[network]))),
		lanes:   make(map[laneKey]*Queue[Packet]),
	}
	n.adapters[network] = append(n.adapters[network], a)
	return a
}

// Adapter returns the node's idx-th adapter on the named network, or an
// error if it does not exist.
func (n *Node) Adapter(network string, idx int) (*Adapter, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	as := n.adapters[network]
	if idx < 0 || idx >= len(as) {
		return nil, fmt.Errorf("simnet: node %d has no adapter %s[%d]", n.id, network, idx)
	}
	return as[idx], nil
}

// Networks lists the network names this node is attached to.
func (n *Node) Networks() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for name := range n.adapters {
		out = append(out, name)
	}
	return out
}

// laneKey identifies one in-order lane arriving at an adapter.
type laneKey struct {
	srcNode int
	lane    int
}

// Adapter is one simulated NIC. Its transmit engine is a serial virtual-time
// resource; its receive side is a set of in-order lanes, one per (source
// node, lane id) pair, mirroring per-connection NIC receive rings.
type Adapter struct {
	node    *Node
	network string
	index   int
	tx      *vclock.Resource

	mu       sync.Mutex
	lanes    map[laneKey]*Queue[Packet]
	segments map[uint32]*Segment

	bytesOut   atomic.Int64
	bytesIn    atomic.Int64
	pktsOut    atomic.Int64
	pktsIn     atomic.Int64
	corrupt    atomic.Bool
	corruptMin atomic.Int64
	faults     atomic.Pointer[faultState]
}

// Node returns the adapter's host node.
func (a *Adapter) Node() *Node { return a.node }

// Network reports the network name the adapter is attached to.
func (a *Adapter) Network() string { return a.network }

// Index reports the adapter's index among the node's adapters on the
// same network.
func (a *Adapter) Index() int { return a.index }

// TxEngine returns the adapter's transmit engine resource; drivers acquire
// it to serialize outgoing transfers in virtual time.
func (a *Adapter) TxEngine() *vclock.Resource { return a.tx }

// RxLane returns (creating on first use) the in-order receive lane for
// packets arriving from srcNode on the given lane id.
func (a *Adapter) RxLane(srcNode, lane int) *Queue[Packet] {
	a.mu.Lock()
	defer a.mu.Unlock()
	k := laneKey{srcNode, lane}
	q := a.lanes[k]
	if q == nil {
		q = NewQueue[Packet]()
		a.lanes[k] = q
	}
	return q
}

// Peer resolves the idx-th adapter of dstNode on this adapter's network.
func (a *Adapter) Peer(dstNode, idx int) (*Adapter, error) {
	return a.node.world.Node(dstNode).Adapter(a.network, idx)
}

// Deliver pushes a packet onto the destination adapter's lane and updates
// both adapters' traffic counters. The caller (a driver) has already
// stamped the packet's virtual times. Any armed single-shot fault and the
// adapter's FaultPlan (if installed) strike here, on the way out.
func (a *Adapter) Deliver(dst *Adapter, lane int, p Packet) {
	a.injectFault(&p)
	if fs := a.faults.Load(); fs != nil {
		var extra int64
		p.Data, extra = fs.strike(p.Data, p.Inject)
		p.Arrive += extra
	}
	a.bytesOut.Add(int64(len(p.Data)))
	a.pktsOut.Add(1)
	dst.bytesIn.Add(int64(len(p.Data)))
	dst.pktsIn.Add(1)
	dst.RxLane(a.node.id, lane).Push(p)
}

// Stats reports cumulative traffic through the adapter.
func (a *Adapter) Stats() (bytesIn, bytesOut, pktsIn, pktsOut int64) {
	return a.bytesIn.Load(), a.bytesOut.Load(), a.pktsIn.Load(), a.pktsOut.Load()
}

// CorruptNext arms a single-shot fault: the next transfer carried by this
// adapter — a packet delivered through it, or a remote write landing in a
// segment it exports — has one payload byte flipped. Reliability is a
// property of the simulated interconnects, but the layers above carry
// integrity checks (the forwarding layer's packet checksums); fault
// injection exists to prove they fire. For a continuous, probabilistic
// fault process use SetFaults.
func (a *Adapter) CorruptNext() { a.CorruptNextMin(1) }

// CorruptNextMin arms the fault for the next carried transfer of at least
// min bytes (so a test can target payloads rather than tiny headers).
func (a *Adapter) CorruptNextMin(min int) {
	a.corruptMin.Store(int64(min))
	a.corrupt.Store(true)
}

// injectFault applies (and disarms) a pending fault to p's payload.
func (a *Adapter) injectFault(p *Packet) {
	p.Data = a.corruptOnce(p.Data)
}

// corruptOnce consumes an armed single-shot fault against data, returning
// the flipped copy (or data untouched when disarmed or below the floor).
func (a *Adapter) corruptOnce(data []byte) []byte {
	if len(data) == 0 || int64(len(data)) < a.corruptMin.Load() {
		return data
	}
	if !a.corrupt.CompareAndSwap(true, false) {
		return data
	}
	cp := append([]byte(nil), data...)
	cp[len(cp)/2] ^= 0xFF
	return cp
}

// Adapters lists every adapter of every node, in rank then network order —
// the hook bench worlds use to install one FaultPlan fabric-wide.
func (w *World) Adapters() []*Adapter {
	var out []*Adapter
	for _, n := range w.nodes {
		n.mu.Lock()
		names := make([]string, 0, len(n.adapters))
		for name := range n.adapters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, n.adapters[name]...)
		}
		n.mu.Unlock()
	}
	return out
}
