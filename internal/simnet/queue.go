package simnet

import "sync"

// Packet is a unit of data in flight on the simulated fabric. Data is real
// (the receiver gets the actual bytes); Inject and Arrive are virtual-time
// stamps assigned by the sending driver from its cost model.
type Packet struct {
	Data   []byte
	Inject int64 // vclock.Time: sender began injecting
	Arrive int64 // vclock.Time: last byte lands at the receiver
	Tag    uint64
	Kind   int // driver-specific discriminator (e.g. control vs data)
}

// Queue is an unbounded, ordered, reliable FIFO: the simulated equivalent
// of an in-order network lane plus the NIC receive ring behind it. It is
// unbounded so that simulated flow control (credits, rendezvous) is
// implemented by the drivers themselves, exactly where the real protocols
// implement it, rather than by accidental channel backpressure.
type Queue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

// NewQueue returns an empty open queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends v. Pushing to a closed queue panics: drivers own queue
// lifetime and never race close against send.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		panic("simnet: push on closed queue")
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

// PushIfOpen appends v unless the queue is closed, reporting whether the
// item was accepted. Layers whose producers may legitimately race a
// receiver-side Close (a sender announcing a message to a channel being
// shut down) use it to turn the shutdown into an error instead of a panic.
func (q *Queue[T]) PushIfOpen(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, v)
	q.cond.Signal()
	return true
}

// Pop removes and returns the head item, blocking until one is available.
// ok is false if the queue was closed and drained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close marks the queue closed; blocked and future Pops drain the remaining
// items and then report ok = false.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
