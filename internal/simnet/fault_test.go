package simnet

import (
	"bytes"
	"sync"
	"testing"
)

// faultWorld builds two nodes joined by a "net" fabric and returns the
// sender's adapter (faults strike on the way out) and the receiver's.
func faultWorld(t *testing.T) (*Adapter, *Adapter) {
	t.Helper()
	w := NewWorld(2)
	src := w.Node(0).AddAdapter("net")
	dst := w.Node(1).AddAdapter("net")
	return src, dst
}

func payload(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

// deliverAll pushes count payload-sized packets and pops what arrives.
func deliverAll(src, dst *Adapter, count, size int) [][]byte {
	for i := 0; i < count; i++ {
		src.Deliver(dst, 0, Packet{Data: payload(size, byte(i)), Inject: int64(i) * 1000, Arrive: int64(i)*1000 + 100})
	}
	out := make([][]byte, count)
	for i := range out {
		p, _ := dst.RxLane(0, 0).Pop()
		out[i] = p.Data
	}
	return out
}

func TestFaultPlanNilIsTransparent(t *testing.T) {
	src, dst := faultWorld(t)
	src.SetFaults(&FaultPlan{Seed: 1, Drop: 1})
	src.SetFaults(nil) // disarm again
	for i, got := range deliverAll(src, dst, 8, 512) {
		if !bytes.Equal(got, payload(512, byte(i))) {
			t.Fatalf("packet %d modified with no plan installed", i)
		}
	}
	if s := src.FaultStats(); s != (FaultStats{}) {
		t.Errorf("disarmed adapter counted faults: %+v", s)
	}
}

func TestFaultPlanIsSeededDeterministic(t *testing.T) {
	run := func() ([][]byte, FaultStats) {
		src, dst := faultWorld(t)
		src.SetFaults(&FaultPlan{Seed: 42, Corrupt: 0.3, Drop: 0.2, MinBytes: 1})
		out := deliverAll(src, dst, 64, 256)
		return out, src.FaultStats()
	}
	a, as := run()
	b, bs := run()
	if as != bs {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", as, bs)
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("packet %d differs across identical runs", i)
		}
	}
	if as.Corrupted == 0 || as.Dropped == 0 {
		t.Fatalf("plan with corrupt=0.3 drop=0.2 over 64 packets injected nothing: %+v", as)
	}
	// Corruption flips exactly one byte; a drop garbles (essentially)
	// every byte. Verify both shapes appear.
	oneByte, scrambled := 0, 0
	for i, got := range a {
		want := payload(256, byte(i))
		diff := 0
		for j := range got {
			if got[j] != want[j] {
				diff++
			}
		}
		switch {
		case diff == 1:
			oneByte++
		case diff > len(got)/2:
			scrambled++
		case diff != 0:
			t.Fatalf("packet %d: unexpected damage shape (%d bytes differ)", i, diff)
		}
	}
	if int64(oneByte) != as.Corrupted || int64(scrambled) != as.Dropped {
		t.Errorf("observed %d flips/%d scrambles, counters say %d/%d", oneByte, scrambled, as.Corrupted, as.Dropped)
	}
}

func TestFaultPlanMinBytesSparesControlFrames(t *testing.T) {
	src, dst := faultWorld(t)
	src.SetFaults(&FaultPlan{Seed: 7, Drop: 1}) // MinBytes 0 → DefaultFaultMinBytes
	for i, got := range deliverAll(src, dst, 16, DefaultFaultMinBytes-1) {
		if !bytes.Equal(got, payload(DefaultFaultMinBytes-1, byte(i))) {
			t.Fatalf("sub-floor packet %d was struck", i)
		}
	}
	if got := deliverAll(src, dst, 1, DefaultFaultMinBytes)[0]; bytes.Equal(got, payload(DefaultFaultMinBytes, 0)) {
		t.Fatal("at-floor packet escaped a certain drop")
	}
}

func TestFaultPlanDelayAndJitterShiftArrival(t *testing.T) {
	src, dst := faultWorld(t)
	src.SetFaults(&FaultPlan{Seed: 3, Delay: 500, Jitter: 300, MinBytes: 1})
	src.Deliver(dst, 0, Packet{Data: payload(128, 0), Inject: 0, Arrive: 100})
	p, _ := dst.RxLane(0, 0).Pop()
	if p.Arrive < 600 || p.Arrive >= 900 {
		t.Fatalf("arrival %d not in delayed window [600,900)", p.Arrive)
	}
	if !bytes.Equal(p.Data, payload(128, 0)) {
		t.Fatal("delay must not damage the payload")
	}
	if s := src.FaultStats(); s.Delayed != 1 {
		t.Errorf("delayed count = %d, want 1", s.Delayed)
	}
}

func TestFaultPlanBurstWindowScramblesEverything(t *testing.T) {
	src, dst := faultWorld(t)
	src.SetFaults(&FaultPlan{Seed: 9, BurstStart: 1000, BurstEnd: 2000, MinBytes: 1})
	inWindow := 0
	for i := 0; i < 30; i++ {
		inject := int64(i) * 100 // 0..2900: ten transfers inside the window
		src.Deliver(dst, 0, Packet{Data: payload(64, byte(i)), Inject: inject, Arrive: inject + 10})
		p, _ := dst.RxLane(0, 0).Pop()
		intact := bytes.Equal(p.Data, payload(64, byte(i)))
		if inject >= 1000 && inject < 2000 {
			inWindow++
			if intact {
				t.Fatalf("transfer injected at %d inside the burst survived", inject)
			}
		} else if !intact {
			t.Fatalf("transfer injected at %d outside the burst was struck", inject)
		}
	}
	if s := src.FaultStats(); s.Dropped != int64(inWindow) {
		t.Errorf("dropped = %d, want %d (every in-window transfer)", s.Dropped, inWindow)
	}
}

func TestFaultPlanStrikesSegmentWrites(t *testing.T) {
	w := NewWorld(2)
	owner := w.Node(0).AddAdapter("sci")
	w.Node(1).AddAdapter("sci")
	seg := owner.CreateSegment(1, 8<<10)

	owner.SetFaults(&FaultPlan{Seed: 5, Drop: 1, MinBytes: 1})
	data := payload(4096, 1)
	seg.Write(0, data, WriteRecord{Inject: 0, Arrive: 50})
	got := make([]byte, len(data))
	seg.Read(0, got)
	if bytes.Equal(got, data) {
		t.Fatal("segment write escaped a certain drop")
	}
	if s := owner.FaultStats(); s.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", s.Dropped)
	}

	// Disarmed again: writes land verbatim.
	owner.SetFaults(nil)
	seg.Write(0, data, WriteRecord{})
	seg.Read(0, got)
	if !bytes.Equal(got, data) {
		t.Fatal("clean segment write corrupted")
	}
}

func TestCorruptNextStrikesSegmentWrites(t *testing.T) {
	w := NewWorld(1)
	owner := w.Node(0).AddAdapter("sci")
	seg := owner.CreateSegment(2, 4<<10)
	owner.CorruptNextMin(100)
	small := payload(64, 2)
	seg.Write(0, small, WriteRecord{}) // below the floor: spared
	got := make([]byte, 64)
	seg.Read(0, got)
	if !bytes.Equal(got, small) {
		t.Fatal("sub-floor write was struck")
	}
	big := payload(512, 3)
	seg.Write(1024, big, WriteRecord{})
	gotBig := make([]byte, 512)
	seg.Read(1024, gotBig)
	diff := 0
	for i := range gotBig {
		if gotBig[i] != big[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("single-shot segment fault flipped %d bytes, want 1", diff)
	}
}

// TestFaultStrikeIsOrderIndependent pins the concurrency contract of the
// fault process: a transfer's fate is a pure function of the plan seed
// and the transfer's own coordinates, so the interleaving of concurrent
// strikes through the same adapter cannot change any outcome. Two passes
// over the same transfer set — one in order, one reversed and raced from
// many goroutines — must produce identical bytes and delays.
func TestFaultStrikeIsOrderIndependent(t *testing.T) {
	src, _ := faultWorld(t)
	src.SetFaults(&FaultPlan{Seed: 7, Corrupt: 0.4, Drop: 0.3, Jitter: 500, MinBytes: 1})
	fs := src.faults.Load()

	const n = 128
	type fate struct {
		data  []byte
		extra int64
	}
	forward := make([]fate, n)
	for i := 0; i < n; i++ {
		d, extra := fs.strike(payload(96, byte(i)), int64(i)*50)
		forward[i] = fate{d, extra}
	}

	// Same transfers, struck in reverse from concurrent goroutines.
	backward := make([]fate, n)
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, extra := fs.strike(payload(96, byte(i)), int64(i)*50)
			backward[i] = fate{d, extra}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if !bytes.Equal(forward[i].data, backward[i].data) || forward[i].extra != backward[i].extra {
			t.Fatalf("transfer %d: fate depends on strike order", i)
		}
	}
}
