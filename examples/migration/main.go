// Migration: the PM2-style runtime (§1's motivating environment) doing the
// thing PM2 was famous for — migrating running tasks between nodes to
// balance load. A batch of unequal tasks starts on node 0; overloaded
// tasks migrate away; the virtual clocks show the makespan shrinking.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"madeleine2"
	"madeleine2/internal/core"
	"madeleine2/internal/pm2"
)

const (
	nodes     = 3
	tasks     = 9
	workSlice = 300 // µs of compute per task step
	steps     = 4   // compute steps per task
)

// state: [taskID][stepsLeft][homeless flag]
func encode(id, left int) []byte { return []byte{byte(id), byte(left)} }

func run(balance bool) madeleine2.Time {
	w := madeleine2.NewWorld(nodes)
	for i := 0; i < nodes; i++ {
		w.Node(i).AddAdapter(madeleine2.MyrinetNetwork)
	}
	sess := core.NewSession(w)
	chans, err := sess.NewChannel(core.ChannelSpec{Name: "pm2", Driver: "bip"})
	if err != nil {
		log.Fatal(err)
	}
	rts := make([]*pm2.Runtime, nodes)
	for i := range rts {
		rts[i] = pm2.Attach(chans[i])
	}
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()

	for _, rt := range rts {
		rt.RegisterBehavior(1, func(rt *pm2.Runtime, a *madeleine2.Actor, state []byte) pm2.Outcome {
			id, left := int(state[0]), int(state[1])
			// Balance policy: tasks whose id maps them elsewhere leave
			// node 0 before doing any work there.
			if balance && rt.Rank() == 0 && id%nodes != 0 {
				return pm2.Outcome{State: state, MigrateTo: id % nodes}
			}
			a.Advance(madeleine2.Micros(workSlice))
			left--
			if left == 0 {
				var out [10]byte
				out[0] = state[0]
				binary.LittleEndian.PutUint64(out[2:], uint64(a.Now()))
				return pm2.Outcome{State: out[:], Done: true}
			}
			return pm2.Outcome{State: encode(id, left), MigrateTo: pm2.Stay}
		})
	}

	// All tasks start on node 0 — the hotspot.
	spawner := madeleine2.NewActor("spawner")
	for id := 0; id < tasks; id++ {
		if err := rts[0].Spawn(spawner, 0, 1, encode(id, steps)); err != nil {
			log.Fatal(err)
		}
	}

	// Collect completions: with balancing, task id finishes on id%nodes;
	// without, everything finishes on node 0.
	var makespan madeleine2.Time
	perNode := make([]int, nodes)
	for id := 0; id < tasks; id++ {
		if balance {
			perNode[id%nodes]++
		} else {
			perNode[0]++
		}
	}
	for n := 0; n < nodes; n++ {
		for k := 0; k < perNode[n]; k++ {
			fin, ok := rts[n].Finished()
			if !ok {
				log.Fatal("runtime closed")
			}
			if t := madeleine2.Time(binary.LittleEndian.Uint64(fin.State[2:])); t > makespan {
				makespan = t
			}
		}
	}
	if balance {
		fmt.Printf("  tasks finished per node: %v\n", perNode)
	}
	return makespan
}

func main() {
	fmt.Printf("%d tasks × %d steps × %d µs, all spawned on node 0\n\n", tasks, steps, workSlice)
	serial := run(false)
	fmt.Printf("without migration: makespan %v (node 0 does everything)\n\n", serial)
	fmt.Println("with migration:")
	balanced := run(true)
	fmt.Printf("  makespan %v — %.1fx speedup from PM2-style task migration\n",
		balanced, float64(serial)/float64(balanced))
}
