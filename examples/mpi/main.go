// MPI: a small parallel application over the ch_mad device of §5.3.1 — a
// 1-D Jacobi heat-diffusion stencil with halo exchange and a global
// residual Allreduce, the canonical workload of an MPI-over-SAN stack.
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"madeleine2"
	"madeleine2/internal/core"
	"madeleine2/internal/mpi"
)

const (
	ranks  = 4
	cells  = 1 << 12 // per-rank interior cells
	rounds = 20
)

func main() {
	w := madeleine2.NewWorld(ranks)
	for i := 0; i < ranks; i++ {
		w.Node(i).AddAdapter(madeleine2.SCINetwork)
	}
	sess := core.NewSession(w)
	chans, err := sess.NewChannel(core.ChannelSpec{Name: "mpi", Driver: "sisci"})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]float64, ranks)
	times := make([]madeleine2.Time, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := mpi.NewComm(chans[r], madeleine2.NewActor(fmt.Sprintf("rank-%d", r)))
			if err != nil {
				log.Fatal(err)
			}
			grid := make([]float64, cells+2) // plus halo cells
			if comm.Rank() == 0 {
				grid[1] = 1e6 // heat source at the left boundary
			}
			next := make([]float64, cells+2)
			buf8 := make([]byte, 8)
			for it := 0; it < rounds; it++ {
				// Halo exchange with neighbours (even/odd ordering).
				exchange := func(peer int, sendIdx, recvIdx int) {
					if peer < 0 || peer >= comm.Size() {
						return
					}
					put := func() {
						bits := math.Float64bits(grid[sendIdx])
						for i := 0; i < 8; i++ {
							buf8[i] = byte(bits >> (8 * i))
						}
						if err := comm.Send(peer, it, buf8); err != nil {
							log.Fatal(err)
						}
					}
					get := func() {
						in := make([]byte, 8)
						if _, err := comm.Recv(peer, it, in); err != nil {
							log.Fatal(err)
						}
						var bits uint64
						for i := 0; i < 8; i++ {
							bits |= uint64(in[i]) << (8 * i)
						}
						grid[recvIdx] = math.Float64frombits(bits)
					}
					if comm.Rank()%2 == 0 {
						put()
						get()
					} else {
						get()
						put()
					}
				}
				exchange(comm.Rank()-1, 1, 0)
				exchange(comm.Rank()+1, cells, cells+1)

				// Jacobi sweep + local residual.
				var res float64
				for i := 1; i <= cells; i++ {
					next[i] = (grid[i-1] + grid[i+1]) / 2
					d := next[i] - grid[i]
					res += d * d
				}
				grid, next = next, grid

				// Global residual.
				out := make([]float64, 1)
				if err := comm.Allreduce([]float64{res}, out, mpi.Sum); err != nil {
					log.Fatal(err)
				}
				if comm.Rank() == 0 && (it == 0 || it == rounds-1) {
					fmt.Printf("iteration %2d: global residual %.3e (virtual t=%v)\n",
						it, out[0], comm.Actor().Now())
				}
				results[r] = out[0]
			}
			times[r] = comm.Actor().Now()
		}(r)
	}
	wg.Wait()
	for r := 1; r < ranks; r++ {
		if results[r] != results[0] {
			log.Fatalf("rank %d disagrees on the residual", r)
		}
	}
	fmt.Printf("ok: %d ranks, %d iterations, all ranks agree; slowest clock %v\n",
		ranks, rounds, times[0])
}
