// Nexus: remote service requests over Madeleine II (§5.3.2) — a remote
// key/value service. Handlers run on each process's dispatcher thread;
// replies are RSRs back to the caller, the classic Nexus idiom. The same
// program runs the service once over SISCI and once over TCP, showing the
// Fig. 7 gap.
package main

import (
	"fmt"
	"log"
	"sync"

	"madeleine2"
	"madeleine2/internal/core"
	"madeleine2/internal/nexus"
)

const (
	hPut = iota + 1
	hGet
	hReply
)

func run(driver string) {
	w := madeleine2.NewWorld(2)
	for i := 0; i < 2; i++ {
		w.Node(i).AddAdapter(madeleine2.SCINetwork)
		w.Node(i).AddAdapter(madeleine2.EthernetNetwork)
	}
	sess := core.NewSession(w)
	chans, err := sess.NewChannel(core.ChannelSpec{Name: "nexus", Driver: driver})
	if err != nil {
		log.Fatal(err)
	}
	server, client := nexus.Attach(chans[1]), nexus.Attach(chans[0])
	defer server.Close()
	defer client.Close()

	// The server: a key/value table manipulated by RSRs.
	var mu sync.Mutex
	table := map[string][]byte{}
	toClient, err := server.Bind(0)
	if err != nil {
		log.Fatal(err)
	}
	server.Register(hPut, func(a *madeleine2.Actor, from int, buf *nexus.Buffer) {
		k, _ := buf.GetString()
		v, _ := buf.GetBytes()
		mu.Lock()
		table[k] = v
		mu.Unlock()
		if err := toClient.RSR(a, hReply, nexus.NewBuffer().PutString("stored "+k)); err != nil {
			log.Fatal(err)
		}
	})
	server.Register(hGet, func(a *madeleine2.Actor, from int, buf *nexus.Buffer) {
		k, _ := buf.GetString()
		mu.Lock()
		v := table[k]
		mu.Unlock()
		if err := toClient.RSR(a, hReply, nexus.NewBuffer().PutBytes(v)); err != nil {
			log.Fatal(err)
		}
	})

	// The client: issue RSRs and wait for the reply handler.
	replies := make(chan *nexus.Buffer, 1)
	stamps := make(chan madeleine2.Time, 1)
	client.Register(hReply, func(a *madeleine2.Actor, from int, buf *nexus.Buffer) {
		replies <- buf
		stamps <- a.Now()
	})
	toServer, err := client.Bind(1)
	if err != nil {
		log.Fatal(err)
	}
	app := madeleine2.NewActor("client-app")

	if err := toServer.RSR(app, hPut, nexus.NewBuffer().PutString("answer").PutBytes([]byte{42})); err != nil {
		log.Fatal(err)
	}
	ack, _ := (<-replies).GetString()
	app.Sync(<-stamps)
	fmt.Printf("  put:  %q\n", ack)

	if err := toServer.RSR(app, hGet, nexus.NewBuffer().PutString("answer")); err != nil {
		log.Fatal(err)
	}
	v, _ := (<-replies).GetBytes()
	rtt := <-stamps
	app.Sync(rtt)
	fmt.Printf("  get:  value=%v, round trip completed at t=%v\n", v, rtt)
}

func main() {
	fmt.Println("key/value service over Nexus/MadII/SISCI:")
	run("sisci")
	fmt.Println("key/value service over Nexus/MadII/TCP (the Fig. 7 gap):")
	run("tcp")
	fmt.Println("ok: same Nexus program, two Madeleine protocol modules")
}
