// Quickstart: the paper's Fig. 1 example — sending a message whose second
// part has a size the receiver cannot know in advance. The size header is
// extracted receive_EXPRESS (it steers the next unpack); the array itself
// is extracted receive_CHEAPER so the library can avoid copies and
// pipeline the transfer.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"madeleine2"
)

func main() {
	// A two-node SCI cluster.
	w := madeleine2.NewWorld(2)
	w.Node(0).AddAdapter(madeleine2.SCINetwork)
	w.Node(1).AddAdapter(madeleine2.SCINetwork)
	sess := madeleine2.NewSession(w)
	chans, err := sess.NewChannel(madeleine2.ChannelSpec{Name: "main", Driver: "sisci"})
	if err != nil {
		log.Fatal(err)
	}

	array := bytes.Repeat([]byte("madeleine"), 4096) // 36 kB, size "unpredictable"

	// Sender (rank 0) — the left column of Fig. 1.
	go func() {
		a := madeleine2.NewActor("sender")
		conn, err := chans[0].BeginPacking(a, 1)
		if err != nil {
			log.Fatal(err)
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(array)))
		// pack(connection, &n, sizeof(int), send_CHEAPER, receive_EXPRESS)
		if err := conn.Pack(n[:], madeleine2.SendCheaper, madeleine2.ReceiveExpress); err != nil {
			log.Fatal(err)
		}
		// pack(connection, array, n, send_CHEAPER, receive_CHEAPER)
		if err := conn.Pack(array, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
			log.Fatal(err)
		}
		if err := conn.EndPacking(); err != nil {
			log.Fatal(err)
		}
	}()

	// Receiver (rank 1) — the right column of Fig. 1.
	b := madeleine2.NewActor("receiver")
	conn, err := chans[1].BeginUnpacking(b)
	if err != nil {
		log.Fatal(err)
	}
	var n [4]byte
	// The integer must be extracted EXPRESS before the array data.
	if err := conn.Unpack(n[:], madeleine2.SendCheaper, madeleine2.ReceiveExpress); err != nil {
		log.Fatal(err)
	}
	size := binary.LittleEndian.Uint32(n[:])
	fmt.Printf("express header arrived at t=%v: array size = %d bytes\n", b.Now(), size)

	data := make([]byte, size) // dynamically allocated from the header
	if err := conn.Unpack(data, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
		log.Fatal(err)
	}
	if err := conn.EndUnpacking(); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(data, array) {
		log.Fatal("array corrupted")
	}
	fmt.Printf("array extracted CHEAPER, complete at t=%v (%.1f MB/s end-to-end)\n",
		b.Now(), madeleine2.MBps(int(size), b.Now()))
	fmt.Println("ok: pack/unpack sequences were symmetric, payload intact")
}
