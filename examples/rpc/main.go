// RPC: the workload Madeleine was designed for (§1) — an RPC-based
// multithreaded runtime in the style of PM2. A server registers functions;
// clients invoke them remotely. The request header (function id, argument
// size) travels receive_EXPRESS so the runtime can dispatch and allocate;
// the argument payload travels receive_CHEAPER. Two channels are used to
// "logically split communication from two different modules" (§2.1):
// requests on a Myrinet/BIP channel, replies on an SCI/SISCI channel.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"madeleine2"
)

// Request header: function id + argument length.
func packHeader(fn uint32, n int) []byte {
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], fn)
	binary.LittleEndian.PutUint32(h[4:], uint32(n))
	return h[:]
}

const (
	fnSum = iota + 1
	fnReverse
)

func main() {
	// Three nodes with both SANs: node 0 is the server.
	w := madeleine2.NewWorld(3)
	for i := 0; i < 3; i++ {
		w.Node(i).AddAdapter(madeleine2.MyrinetNetwork)
		w.Node(i).AddAdapter(madeleine2.SCINetwork)
	}
	sess := madeleine2.NewSession(w)
	req, err := sess.NewChannel(madeleine2.ChannelSpec{Name: "requests", Driver: "bip"})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.NewChannel(madeleine2.ChannelSpec{Name: "replies", Driver: "sisci"})
	if err != nil {
		log.Fatal(err)
	}

	// The server thread: dispatch on the express header, then extract the
	// arguments with the mode each function prefers.
	go func() {
		a := madeleine2.NewActor("server")
		for handled := 0; handled < 4; handled++ {
			conn, err := req[0].BeginUnpacking(a)
			if err != nil {
				log.Fatal(err)
			}
			hdr := make([]byte, 8)
			if err := conn.Unpack(hdr, madeleine2.SendCheaper, madeleine2.ReceiveExpress); err != nil {
				log.Fatal(err)
			}
			fn := binary.LittleEndian.Uint32(hdr[0:])
			n := int(binary.LittleEndian.Uint32(hdr[4:]))
			args := make([]byte, n)
			if err := conn.Unpack(args, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
				log.Fatal(err)
			}
			if err := conn.EndUnpacking(); err != nil {
				log.Fatal(err)
			}
			client := conn.Remote()

			var result []byte
			switch fn {
			case fnSum:
				var s uint64
				for _, b := range args {
					s += uint64(b)
				}
				result = binary.LittleEndian.AppendUint64(nil, s)
			case fnReverse:
				result = make([]byte, n)
				for i, b := range args {
					result[n-1-i] = b
				}
			default:
				log.Fatalf("server: unknown function %d", fn)
			}

			// Reply on the reply channel.
			rc, err := rep[0].BeginPacking(a, client)
			if err != nil {
				log.Fatal(err)
			}
			if err := rc.Pack(packHeader(fn, len(result)), madeleine2.SendSafer, madeleine2.ReceiveExpress); err != nil {
				log.Fatal(err)
			}
			if err := rc.Pack(result, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
				log.Fatal(err)
			}
			if err := rc.EndPacking(); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// Two client threads issue RPCs concurrently.
	type outcome struct {
		who  int
		what string
	}
	done := make(chan outcome, 2)
	client := func(rank int, fn uint32, args []byte) {
		a := madeleine2.NewActor(fmt.Sprintf("client-%d", rank))
		for call := 0; call < 2; call++ {
			conn, err := req[rank].BeginPacking(a, 0)
			if err != nil {
				log.Fatal(err)
			}
			if err := conn.Pack(packHeader(fn, len(args)), madeleine2.SendSafer, madeleine2.ReceiveExpress); err != nil {
				log.Fatal(err)
			}
			if err := conn.Pack(args, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
				log.Fatal(err)
			}
			if err := conn.EndPacking(); err != nil {
				log.Fatal(err)
			}
			rc, err := rep[rank].BeginUnpacking(a)
			if err != nil {
				log.Fatal(err)
			}
			hdr := make([]byte, 8)
			if err := rc.Unpack(hdr, madeleine2.SendSafer, madeleine2.ReceiveExpress); err != nil {
				log.Fatal(err)
			}
			out := make([]byte, binary.LittleEndian.Uint32(hdr[4:]))
			if err := rc.Unpack(out, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
				log.Fatal(err)
			}
			if err := rc.EndUnpacking(); err != nil {
				log.Fatal(err)
			}
			if call == 1 {
				done <- outcome{rank, fmt.Sprintf("fn=%d result=%d bytes rtt-clock=%v", fn, len(out), a.Now())}
			}
		}
	}
	go client(1, fnSum, []byte{1, 2, 3, 4, 5})
	go client(2, fnReverse, []byte("madeleine over myrinet"))

	for i := 0; i < 2; i++ {
		o := <-done
		fmt.Printf("client %d finished: %s\n", o.who, o.what)
	}
	fmt.Println("ok: 4 RPCs served over the request (BIP) and reply (SISCI) channels")
}
