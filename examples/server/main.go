// Server: the paper's closing direction (§7) in action — a service thread
// that interacts with the network through Marcel's adaptive
// polling/interruption mechanism, on a cluster built from a PM2-style
// session description file. Compare the three policies' added latency and
// burnt CPU for the same request stream.
package main

import (
	"fmt"
	"log"

	"madeleine2"
	"madeleine2/internal/config"
	"madeleine2/internal/core"
	"madeleine2/internal/marcel"
)

const sessionFile = `
# a two-node SCI service deployment
nodes 2
adapter sci *
channel rpc sisci
`

const (
	requests = 12
	thinkGap = 180 // µs between client requests: the server mostly waits
)

func main() {
	cfg, err := config.ParseString(sessionFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deploying from session description: %d nodes, %d channel(s)\n\n",
		cfg.Nodes, len(cfg.Channels))

	for _, pol := range []marcel.Policy{marcel.Polling, marcel.Interrupt, marcel.Adaptive} {
		st, done := serve(cfg, pol)
		fmt.Printf("policy %-9s  served %2d requests by t=%v\n", pol, st.Receives, done)
		fmt.Printf("  added latency %6.1f µs/req   CPU burnt waiting %6.1f µs/req   interrupts %d\n",
			st.AddedLat.Microseconds()/requests, st.CPUBusy.Microseconds()/requests, st.Interrupts)
	}
	fmt.Println("\nok: adaptive keeps interrupt-level CPU usage with bounded spin cost")
}

// serve replays the same request stream against one policy.
func serve(cfg *config.Config, pol marcel.Policy) (marcel.Stats, madeleine2.Time) {
	cl, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	chans := cl.Channels["rpc"]

	// The client: sparse requests.
	go func() {
		a := madeleine2.NewActor("client")
		for i := 0; i < requests; i++ {
			a.Advance(madeleine2.Micros(thinkGap))
			conn, err := chans[0].BeginPacking(a, 1)
			if err != nil {
				log.Fatal(err)
			}
			if err := conn.Pack([]byte{byte(i)}, core.SendCheaper, core.ReceiveExpress); err != nil {
				log.Fatal(err)
			}
			if err := conn.EndPacking(); err != nil {
				log.Fatal(err)
			}
		}
	}()

	// The server thread under the policy.
	l := marcel.NewListener(chans[1], pol, marcel.Config{})
	srv := madeleine2.NewActor("server")
	for i := 0; i < requests; i++ {
		conn, err := l.Await(srv)
		if err != nil {
			log.Fatal(err)
		}
		req := make([]byte, 1)
		if err := conn.Unpack(req, core.SendCheaper, core.ReceiveExpress); err != nil {
			log.Fatal(err)
		}
		if err := conn.EndUnpacking(); err != nil {
			log.Fatal(err)
		}
		srv.Advance(madeleine2.Micros(10)) // handle the request
	}
	return l.Stats(), srv.Now()
}
