// Clusters: the §6 scenario — a cluster of clusters. An SCI cluster
// {0,1,2} and a Myrinet cluster {2,3,4} share gateway node 2; a virtual
// channel spans both, and the Generic Transmission Module forwards
// fragmented, self-described packets through the gateway's dual-buffered
// pipeline. The application code is identical for local and forwarded
// destinations: the mechanism is "completely hidden to the upper layers".
package main

import (
	"bytes"
	"fmt"
	"log"

	"madeleine2"
)

func main() {
	w := madeleine2.NewWorld(5)
	for _, r := range []int{0, 1, 2} {
		w.Node(r).AddAdapter(madeleine2.SCINetwork)
	}
	for _, r := range []int{2, 3, 4} {
		w.Node(r).AddAdapter(madeleine2.MyrinetNetwork)
	}
	sess := madeleine2.NewSession(w)

	vcs, err := madeleine2.NewVirtualChannel(sess, madeleine2.VirtualChannelSpec{
		Name: "het",
		MTU:  16 << 10, // the §6.2.1 analysis: both networks move 16 kB in ≈250 µs
		Segments: []madeleine2.ChannelSpec{
			{Driver: "sisci", Nodes: []int{0, 1, 2}},
			{Driver: "bip", Nodes: []int{2, 3, 4}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, v := range vcs {
			v.Close()
		}
	}()

	payload := bytes.Repeat([]byte{0xAB}, 1<<20)

	send := func(src, dst int) madeleine2.Time {
		done := make(chan struct{})
		go func() {
			defer close(done)
			a := madeleine2.NewActor(fmt.Sprintf("src-%d", src))
			conn, err := vcs[src].BeginPacking(a, dst)
			if err != nil {
				log.Fatal(err)
			}
			if err := conn.Pack(payload, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
				log.Fatal(err)
			}
			if err := conn.EndPacking(); err != nil {
				log.Fatal(err)
			}
		}()
		b := madeleine2.NewActor(fmt.Sprintf("dst-%d", dst))
		conn, err := vcs[dst].BeginUnpacking(b)
		if err != nil {
			log.Fatal(err)
		}
		got := make([]byte, len(payload))
		if err := conn.Unpack(got, madeleine2.SendCheaper, madeleine2.ReceiveCheaper); err != nil {
			log.Fatal(err)
		}
		if err := conn.EndUnpacking(); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("payload corrupted")
		}
		<-done
		return b.Now()
	}

	// Intra-cluster: node 0 → node 1 over SCI only.
	local := send(0, 1)
	fmt.Printf("intra-cluster  0→1 (SCI only):        1 MB in %v  (%.1f MB/s)\n",
		local, madeleine2.MBps(len(payload), local))

	// Inter-cluster: node 0 → node 4 through the gateway, same code.
	fwd := send(0, 4)
	fmt.Printf("inter-cluster  0→4 (SCI→gw→Myrinet):  1 MB in %v  (%.1f MB/s)\n",
		fwd, madeleine2.MBps(len(payload), fwd))

	// And the asymmetric direction (§6.2.3: Myrinet DMA starves SCI PIO).
	rev := send(4, 1)
	fmt.Printf("inter-cluster  4→1 (Myrinet→gw→SCI):  1 MB in %v  (%.1f MB/s)\n",
		rev, madeleine2.MBps(len(payload), rev))

	fmt.Println("ok: identical application code for local and forwarded messages")
}
