// Command madtop is the metrics plane's live terminal viewer: it polls a
// session's /metrics.json endpoint (madeleine2.ServeMetrics, or madfwd's
// -metrics-addr flag) and redraws a top-style table of every counter with
// its rate over the last interval, plus gauges and latency histograms.
//
// Usage:
//
//	madtop                               # watch http://127.0.0.1:9109
//	madtop -url http://127.0.0.1:40613   # the port ServeMetrics reported
//	madtop -interval 500ms -count 20     # 20 refreshes, then exit
//	madtop -once                         # one snapshot, no screen control
//
// Rates are computed with Snapshot.Delta between consecutive polls, so a
// counter that stops moving reads 0/s even while its total stays up.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"madeleine2/internal/metrics"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9109", "metrics endpoint base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll period")
	count := flag.Int("count", 0, "exit after this many refreshes (0 = run until killed)")
	once := flag.Bool("once", false, "print one snapshot and exit (no rates, no screen clearing)")
	flag.Parse()
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "madtop: -interval must be positive")
		os.Exit(2)
	}

	if *once {
		snap, err := fetch(*url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madtop: %v\n", err)
			os.Exit(1)
		}
		render(os.Stdout, *url, snap, metrics.Snapshot{}, 0, false)
		return
	}

	var prev metrics.Snapshot
	havePrev := false
	for n := 0; *count == 0 || n < *count; n++ {
		snap, err := fetch(*url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madtop: %v\n", err)
			os.Exit(1)
		}
		// Clear and home between refreshes, like top.
		fmt.Print("\033[H\033[2J")
		elapsed := time.Duration(0)
		if havePrev {
			elapsed = *interval
		}
		render(os.Stdout, *url, snap, prev, elapsed, havePrev)
		prev, havePrev = snap, true
		if *count != 0 && n == *count-1 {
			break
		}
		time.Sleep(*interval)
	}
}

// fetch pulls and parses one JSON snapshot.
func fetch(base string) (metrics.Snapshot, error) {
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return metrics.Snapshot{}, fmt.Errorf("%s/metrics.json: %s: %s", base, resp.Status, body)
	}
	return metrics.ParseSnapshot(resp.Body)
}

// render redraws one refresh: counters with totals and rates, gauges,
// histograms. Without a previous snapshot the rate column reads "-".
func render(w io.Writer, url string, snap, prev metrics.Snapshot, elapsed time.Duration, havePrev bool) {
	fmt.Fprintf(w, "madtop — %s — %d counters, %d gauges, %d histograms\n\n",
		url, len(snap.Counters), len(snap.Gauges), len(snap.Hists))

	delta := metrics.Snapshot{}
	if havePrev && elapsed > 0 {
		delta = snap.Delta(prev)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COUNTER\tTOTAL\tRATE")
	for _, c := range snap.Counters {
		rate := "-"
		if havePrev && elapsed > 0 {
			d, _ := delta.Counter(c.Name)
			rate = fmt.Sprintf("%.1f/s", float64(d)/elapsed.Seconds())
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", c.Name, c.Value, rate)
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(tw, "\t\t")
		fmt.Fprintln(tw, "GAUGE\tVALUE\t")
		for _, g := range snap.Gauges {
			fmt.Fprintf(tw, "%s\t%d\t\n", g.Name, g.Value)
		}
	}
	if len(snap.Hists) > 0 {
		fmt.Fprintln(tw, "\t\t")
		fmt.Fprintln(tw, "HISTOGRAM\tCOUNT\tP50 / P99")
		for _, h := range snap.Hists {
			fmt.Fprintf(tw, "%s\t%d\t%v / %v\n", h.Name, h.Count, h.P50, h.P99)
		}
	}
	tw.Flush()
}
