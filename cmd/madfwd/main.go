// Command madfwd runs the §6.2 cluster-of-clusters forwarding experiment:
// an SCI cluster and a Myrinet cluster joined by a gateway node, with
// messages forwarded through the Generic TM's dual-buffered pipeline.
//
// Usage:
//
//	madfwd                      # SCI→Myrinet, 16 kB packets
//	madfwd -reverse -mtu 8192   # Myrinet→SCI with 8 kB packets
//	madfwd -control 45          # with the gateway bandwidth-control extension
//	madfwd -mtu 512 -fault-corrupt 0.01 -fault-drop 0.01 -trace
//	                            # hostile fabric: reliable mode + counters
//	madfwd -rails 2             # stripe both segments across two adapters
//	madfwd -fault-drop 0.02 -metrics-addr 127.0.0.1:9109 -metrics-hold 30s
//	                            # expose live counters for madtop / Prometheus
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"madeleine2/internal/bench"
	"madeleine2/internal/core"
	"madeleine2/internal/fwd"
	"madeleine2/internal/metrics"
	"madeleine2/internal/simnet"
	"madeleine2/internal/trace"
	"madeleine2/internal/vclock"
)

func main() {
	mtu := flag.Int("mtu", 16<<10, "forwarding packet size (MTU) in bytes")
	reverse := flag.Bool("reverse", false, "measure Myrinet→SCI instead of SCI→Myrinet")
	msg := flag.Int("msg", 2<<20, "message size in bytes")
	control := flag.Float64("control", 0, "gateway bandwidth control in MB/s (0 = off)")
	forceCopy := flag.Bool("force-copy", false, "disable the static-buffer hand-off (ablation)")
	showTrace := flag.Bool("trace", false, "print the whole path's span timeline and per-TM latencies")
	traceJSON := flag.String("trace-json", "", "with -trace, also write a Chrome trace-event JSON file")
	reliable := flag.Bool("reliable", false, "run the Generic TM's ACK/NACK reliable mode (implied by any -fault flag)")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "per-transfer single-byte corruption probability on every adapter")
	faultDrop := flag.Float64("fault-drop", 0, "per-transfer scrambled-frame (drop) probability on every adapter")
	faultDelay := flag.Float64("fault-delay", 0, "extra delivery delay in µs on every adapter")
	faultJitter := flag.Float64("fault-jitter", 0, "uniform extra delivery jitter in µs on every adapter")
	faultSeed := flag.Int64("fault-seed", 1, "seed of the deterministic fault stream")
	faultMin := flag.Int("fault-min", 0, "fault eligibility floor in bytes (0 = simnet default, sparing control frames)")
	retries := flag.Int("retries", 0, "reliable mode: max retransmits per packet (0 = default)")
	rails := flag.Int("rails", 1, "adapters per segment: >1 stripes each segment across that many rails")
	stripeSize := flag.Int("stripe-size", 0, "rail stripe chunk in bytes (0 = mtu/2, so forwarded packets actually stripe)")
	metricsAddr := flag.String("metrics-addr", "", "serve the session's metrics registry over HTTP on this address (e.g. 127.0.0.1:0)")
	metricsHold := flag.Duration("metrics-hold", 0, "with -metrics-addr, keep the endpoint up this long after the run (0 = close immediately)")
	flag.Parse()

	if *rails < 1 {
		fmt.Fprintln(os.Stderr, "madfwd: -rails must be at least 1")
		os.Exit(2)
	}
	stripe := *stripeSize
	if stripe == 0 {
		stripe = *mtu / 2
	}

	var plan *simnet.FaultPlan
	if *faultCorrupt > 0 || *faultDrop > 0 || *faultDelay > 0 || *faultJitter > 0 {
		plan = &simnet.FaultPlan{
			Seed:     *faultSeed,
			Corrupt:  *faultCorrupt,
			Drop:     *faultDrop,
			Delay:    int64(vclock.Micros(*faultDelay)),
			Jitter:   int64(vclock.Micros(*faultJitter)),
			MinBytes: *faultMin,
		}
	}
	hostile := plan != nil || *reliable

	var obs *core.Observer
	if *showTrace || *traceJSON != "" {
		obs = core.NewObserver(trace.New(1 << 16))
	}
	mutate := func(s *fwd.Spec) {
		s.BandwidthControl = *control
		s.ForceGatewayCopy = *forceCopy
		s.MaxRetries = *retries
	}
	vcs, err := bench.HetVCRails("madfwd", *mtu, *rails, stripe, plan, hostile, obs, mutate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
		os.Exit(1)
	}
	defer bench.CloseVCs(vcs)

	var sess *core.Session
	for _, v := range vcs {
		sess = v.Session()
		break
	}
	if *metricsAddr != "" {
		srv, err := metrics.Serve(sess.Metrics(), *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madfwd: metrics endpoint: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("madfwd: metrics at %s/metrics (Prometheus) and /metrics.json\n", srv.URL())
		if *metricsHold > 0 {
			defer func() {
				fmt.Printf("madfwd: holding metrics endpoint for %v (point madtop at %s)\n", *metricsHold, srv.URL())
				time.Sleep(*metricsHold)
			}()
		}
	}

	src, dst, dir := 0, 4, "SCI→Myrinet"
	if *reverse {
		src, dst, dir = 4, 0, "Myrinet→SCI"
	}
	t, err := bench.ForwardedStream(vcs, src, dst, *msg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("madfwd: %s through gateway node 2\n", dir)
	fmt.Printf("  message %d bytes, packets of %d bytes\n", *msg, *mtu)
	if *rails > 1 {
		fmt.Printf("  %d rails per segment, stripe %d bytes\n", *rails, stripe)
	}
	if *control > 0 {
		fmt.Printf("  gateway bandwidth control: %.0f MB/s incoming\n", *control)
	}
	fmt.Printf("  steady one-way: %v  →  %.1f MB/s\n", t, vclock.MBps(*msg, t))
	if hostile {
		// Every reliability counter and injected fault publishes into the
		// session registry, so one snapshot covers all ranks and adapters.
		snap := sess.Metrics().Snapshot()
		c := func(name string) int64 { v, _ := snap.Counter(name); return v }
		fmt.Printf("  reliability: %d packets, %d retransmits, %d acks, %d nacks (%d damaged), %d dup-suppressed, %d backoffs\n",
			c("fwd/rel/packet"), c("fwd/rel/retransmit"), c("fwd/rel/ack"), c("fwd/rel/nack"),
			c("fwd/rel/ctl-damaged"), c("fwd/rel/dup-suppressed"), c("fwd/rel/backoff"))
		fmt.Printf("  drops: header %d, len %d, crc %d, route %d, closed %d\n",
			c("fwd/drop/header"), c("fwd/drop/len"), c("fwd/drop/crc"), c("fwd/drop/route"), c("fwd/drop/closed"))
		if plan != nil {
			fmt.Printf("  faults injected: %d corrupted, %d dropped, %d delayed\n",
				c("fault/corrupted"), c("fault/dropped"), c("fault/delayed"))
		}
	}
	if obs != nil {
		fmt.Println()
		fmt.Print(obs.Recorder().Timeline(100))
		fmt.Println()
		fmt.Println("per-TM transfer latency (virtual time):")
		fmt.Print(obs.Report())
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			if err := obs.Recorder().Chrome(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceJSON)
		}
	}
}
