// Command madfwd runs the §6.2 cluster-of-clusters forwarding experiment:
// an SCI cluster and a Myrinet cluster joined by a gateway node, with
// messages forwarded through the Generic TM's dual-buffered pipeline.
//
// Usage:
//
//	madfwd                      # SCI→Myrinet, 16 kB packets
//	madfwd -reverse -mtu 8192   # Myrinet→SCI with 8 kB packets
//	madfwd -control 45          # with the gateway bandwidth-control extension
package main

import (
	"flag"
	"fmt"
	"os"

	"madeleine2/internal/bench"
	"madeleine2/internal/core"
	"madeleine2/internal/fwd"
	"madeleine2/internal/trace"
	"madeleine2/internal/vclock"
)

func main() {
	mtu := flag.Int("mtu", 16<<10, "forwarding packet size (MTU) in bytes")
	reverse := flag.Bool("reverse", false, "measure Myrinet→SCI instead of SCI→Myrinet")
	msg := flag.Int("msg", 2<<20, "message size in bytes")
	control := flag.Float64("control", 0, "gateway bandwidth control in MB/s (0 = off)")
	forceCopy := flag.Bool("force-copy", false, "disable the static-buffer hand-off (ablation)")
	showTrace := flag.Bool("trace", false, "print the whole path's span timeline and per-TM latencies")
	traceJSON := flag.String("trace-json", "", "with -trace, also write a Chrome trace-event JSON file")
	flag.Parse()

	var obs *core.Observer
	if *showTrace || *traceJSON != "" {
		obs = core.NewObserver(trace.New(1 << 16))
	}
	vcs, err := bench.HetVCObserved("madfwd", *mtu, obs, func(s *fwd.Spec) {
		s.BandwidthControl = *control
		s.ForceGatewayCopy = *forceCopy
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
		os.Exit(1)
	}
	defer bench.CloseVCs(vcs)

	src, dst, dir := 0, 4, "SCI→Myrinet"
	if *reverse {
		src, dst, dir = 4, 0, "Myrinet→SCI"
	}
	t, err := bench.ForwardedStream(vcs, src, dst, *msg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("madfwd: %s through gateway node 2\n", dir)
	fmt.Printf("  message %d bytes, packets of %d bytes\n", *msg, *mtu)
	if *control > 0 {
		fmt.Printf("  gateway bandwidth control: %.0f MB/s incoming\n", *control)
	}
	fmt.Printf("  steady one-way: %v  →  %.1f MB/s\n", t, vclock.MBps(*msg, t))
	if obs != nil {
		fmt.Println()
		fmt.Print(obs.Recorder().Timeline(100))
		fmt.Println()
		fmt.Println("per-TM transfer latency (virtual time):")
		fmt.Print(obs.Report())
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			if err := obs.Recorder().Chrome(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "madfwd: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceJSON)
		}
	}
}
