// Command madbench regenerates the paper's evaluation: every figure of §5
// and §6.2, the §6.2.1 packet-size analysis, and the ablation studies of
// the design choices DESIGN.md calls out.
//
// Usage:
//
//	madbench                  # run everything, print tables
//	madbench -fig 10          # one figure (4, 5, 6, 7, 10, 11, crossover, stripe, rdma, coll, llm)
//	madbench -fig coll        # topology-aware collectives vs. the linear baseline
//	madbench -fig llm         # LLM-fabric traffic worlds on the lossy two-cluster fabric
//	madbench -fig stripe -rails 1,2,4   # multi-rail scaling at those rail counts
//	madbench -ablations       # only the ablations
//	madbench -markdown X.md   # also write the EXPERIMENTS.md content
//	madbench -json out.json   # also write the results as JSON
//	madbench -trace           # traced representative workload afterwards
//	madbench -metrics METRICS_bench.json   # metrics-plane snapshot artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"madeleine2/internal/bench"
	"madeleine2/internal/core"
	"madeleine2/internal/model"
	"madeleine2/internal/simnet"
	"madeleine2/internal/trace"
	"madeleine2/internal/vclock"
)

func main() {
	fig := flag.String("fig", "all", "which figure to reproduce: all, 4, 5, 6, 7, crossover, 10, 11, stripe, async, rdma, coll, llm")
	rails := flag.String("rails", "1,2,4", "rail counts for the stripe figure, comma-separated")
	stripeSize := flag.Int("stripe-size", 0, "stripe chunk size in bytes for the stripe figure (0 = library default)")
	asyncWorkers := flag.Int("async-workers", 64, "progress-engine worker count for the async figure")
	asyncConns := flag.String("async-conns", "", "conversation counts for the async figure, comma-separated (default 1000,10000,100000)")
	ablations := flag.Bool("ablations", false, "run only the ablation studies")
	markdown := flag.String("markdown", "", "write the results as Markdown to this file")
	jsonOut := flag.String("json", "", "write the results as JSON to this file")
	plot := flag.Bool("plot", false, "render each figure as an ASCII chart too")
	showTrace := flag.Bool("trace", false, "run a traced representative workload afterwards: ASCII timeline + per-TM latency histograms")
	traceJSON := flag.String("trace-json", "", "with -trace, also write a Chrome trace-event JSON file")
	metricsOut := flag.String("metrics", "", "run an instrumented lossy-forwarding workload and write its metrics snapshot as JSON to this file")
	flag.Parse()

	var results []bench.Result
	var err error
	switch {
	case *ablations:
		results, err = bench.AllAblations()
	case *fig == "all":
		results, err = bench.AllFigures()
		if err == nil {
			var abl []bench.Result
			abl, err = bench.AllAblations()
			results = append(results, abl...)
		}
	case *fig == "async":
		var scales []int
		if *asyncConns != "" {
			scales, err = parseCounts(*asyncConns, "-async-conns")
		}
		if err == nil {
			var r bench.Result
			r, err = bench.AsyncScale(scales, *asyncWorkers)
			results = []bench.Result{r}
		}
	case *fig == "stripe":
		var counts []int
		counts, err = parseRails(*rails)
		if err == nil {
			var r bench.Result
			r, err = bench.StripeScaling("tcp", counts, *stripeSize)
			results = []bench.Result{r}
		}
	default:
		fns := map[string]func() (bench.Result, error){
			"4": bench.Fig4, "5": bench.Fig5, "6": bench.Fig6, "7": bench.Fig7,
			"crossover": bench.Crossover, "10": bench.Fig10, "11": bench.Fig11,
			"rdma": bench.RDMACrossover, "coll": bench.CollFigure, "llm": bench.LLMFigure,
		}
		f, ok := fns[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "madbench: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		var r bench.Result
		r, err = f()
		results = []bench.Result{r}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(banner())
	for _, r := range results {
		fmt.Println(r.Table())
		if *plot {
			if p := r.Plot(72, 16); p != "" {
				fmt.Println(p)
			}
		}
	}

	if *markdown != "" {
		var b strings.Builder
		b.WriteString(markdownHeader())
		for _, r := range results {
			b.WriteString(r.Markdown())
		}
		if err := os.WriteFile(*markdown, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *markdown)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *showTrace || *traceJSON != "" {
		if err := tracedWorkload(*traceJSON); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := metricsSnapshot(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// metricsSnapshot runs a representative instrumented workload — a
// reliable SCI→Myrinet forwarded stream over a lossy fabric — and writes
// the session registry's snapshot as JSON, so CI can archive the metrics
// plane's view of a run next to the BENCH_*.json artifacts.
func metricsSnapshot(path string) error {
	plan := &simnet.FaultPlan{Seed: 7, Corrupt: 0.01, Drop: 0.01}
	vcs, err := bench.LossyHetVC(bench.NextName("metrics"), 4<<10, plan, nil, nil)
	if err != nil {
		return err
	}
	defer bench.CloseVCs(vcs)
	if _, err := bench.ForwardedStream(vcs, 0, 4, 256<<10); err != nil {
		return err
	}
	var sess *core.Session
	for _, v := range vcs {
		sess = v.Session()
		break
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sess.Metrics().Snapshot().JSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// parseRails parses the -rails flag's comma-separated rail counts.
func parseRails(s string) ([]int, error) { return parseCounts(s, "-rails") }

// parseCounts parses a comma-separated list of positive counts.
func parseCounts(s, flagName string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad %s value %q (want comma-separated counts >= 1)", flagName, part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("%s lists no counts", flagName)
	}
	return counts, nil
}

// tracedWorkload reruns a representative slice of the evaluation — a
// Myrinet ping-pong and a forwarded SCI→Myrinet stream — with the
// session observer installed, then renders what the sink caught: the
// virtual-time span timeline, the per-TM latency histograms and the
// channel accounting. With jsonPath it also writes the spans in Chrome
// trace-event form.
func tracedWorkload(jsonPath string) error {
	obs := core.NewObserver(trace.New(1 << 16))

	_, chans, err := bench.TwoNodesObserved("bip", obs)
	if err != nil {
		return err
	}
	pp, err := bench.PingPong(chans, 0, 1, 4<<10, 5)
	if err != nil {
		return err
	}

	vcs, err := bench.HetVCObserved(bench.NextName("traced"), 16<<10, obs, nil)
	if err != nil {
		return err
	}
	defer bench.CloseVCs(vcs)
	fw, err := bench.ForwardedStream(vcs, 0, 4, 256<<10)
	if err != nil {
		return err
	}

	fmt.Println("traced workload: bip ping-pong (4 kB) + SCI→Myrinet forwarded stream (256 kB)")
	fmt.Printf("  ping-pong one-way %v, forwarded stream %.1f MB/s\n\n", pp, vclock.MBps(256<<10, fw))
	fmt.Print(obs.Recorder().Timeline(100))
	fmt.Println()
	fmt.Println("per-TM transfer latency (virtual time):")
	fmt.Print(obs.Report())

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := obs.Recorder().Chrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

func banner() string {
	return fmt.Sprintf(`Madeleine II reproduction — virtual-time measurement run
drivers: %v
testbed model: dual PII-450, 33 MHz 32-bit PCI (one-way cap %.0f MB/s,
aggregate %.0f MB/s, DMA-over-PIO penalty x%.2f), gateway step %v
`,
		core.Drivers(), model.DefaultPCI().OneWayCap,
		model.DefaultPCI().AggregateCap, model.DefaultPCI().PIOPenalty,
		model.GatewayStepOverhead)
}

func markdownHeader() string {
	return `# EXPERIMENTS — paper vs. measured

Generated by ` + "`go run ./cmd/madbench -markdown EXPERIMENTS.md`" + `.

All measurements are **virtual time** over the simulated 1999 testbed
(calibrated models in internal/model; see DESIGN.md §2 for the
substitution table). Absolute agreement with the paper is expected only at
the calibration anchors; everywhere else the claim is that the *shape* —
who wins, by what factor, where the knees and crossovers fall — matches
the paper. 1 MB/s = 1e6 bytes/s, as in the paper's figures.

`
}
