// Command madinfo prints the library's functional surface: the Table 1
// application interface, the Table 2 transmission-module interface, the
// supported protocol modules with their transfer methods and calibrated
// cost models, and the testbed parameters.
package main

import (
	"fmt"

	"madeleine2/internal/core"
	"madeleine2/internal/model"
)

func main() {
	fmt.Println("Madeleine II reproduction — system inventory")
	fmt.Println()
	fmt.Println("Table 1: functional interface")
	for _, row := range [][2]string{
		{"Channel.BeginPacking", "Initiates a new message (mad_begin_packing)"},
		{"Channel.BeginUnpacking", "Initiates a message reception (mad_begin_unpacking)"},
		{"Connection.EndPacking", "Finalize an emission (mad_end_packing)"},
		{"Connection.EndUnpacking", "Finalize a reception (mad_end_unpacking)"},
		{"Connection.Pack", "Packs a data block (mad_pack)"},
		{"Connection.Unpack", "Unpacks a data block (mad_unpack)"},
	} {
		fmt.Printf("  %-26s %s\n", row[0], row[1])
	}
	fmt.Println()
	fmt.Println("Table 2: transmission-module interface")
	for _, row := range [][2]string{
		{"SendBuffer", "Send a single buffer"},
		{"SendBufferGroup", "Send a group of buffers"},
		{"ReceiveBuffer", "Receive a single buffer"},
		{"ReceiveSubBufferGroup", "Receive a group of buffers"},
		{"ObtainStaticBuffer", "Obtain a protocol level buffer"},
		{"ReleaseStaticBuffer", "Release a protocol level buffer"},
	} {
		fmt.Printf("  %-26s %s\n", row[0], row[1])
	}
	fmt.Println()
	fmt.Println("Protocol modules and transfer-method cost models:")
	rows := []struct {
		drv  string
		link model.Link
		note string
	}{
		{"bip (short)", model.BIPShort, fmt.Sprintf("messages < %d B, credit flow control", model.BIPShortMax)},
		{"bip (long)", model.BIPLong, "rendezvous, zero-copy delivery"},
		{"sisci (short)", model.SISCIShort, fmt.Sprintf("optimized PIO, < %d B", model.SISCIShortMax)},
		{"sisci (pio)", model.SISCIPIO, "regular single-buffer PIO"},
		{"sisci (dual)", model.SISCIDual, fmt.Sprintf("adaptive dual-buffering, ≥ %d B", model.SISCIDualMin)},
		{"sisci (dma)", model.SISCIDMA, "implemented, disabled by default (§5.2.1)"},
		{"tcp", model.TCPFE, "kernel TCP over Fast Ethernet"},
		{"via (send)", model.VIASend, "descriptor queues, pre-posted receives"},
		{"via (rdma)", model.VIARDMA, "registered-memory large path"},
		{"sbp", model.SBP, "static buffers on both sides (§6.1)"},
	}
	for _, r := range rows {
		fmt.Printf("  %-14s fixed %8s  bandwidth %6.1f MB/s  %-4s  %s\n",
			r.drv, r.link.Fixed, r.link.Bandwidth, r.link.Kind, r.note)
	}
	fmt.Println()
	bus := model.DefaultPCI()
	fmt.Printf("Testbed: dual PII-450, Linux 2.2.13, 33 MHz 32-bit PCI\n")
	fmt.Printf("  PCI: one-way cap %.0f MB/s, aggregate %.0f MB/s, DMA-over-PIO penalty x%.2f\n",
		bus.OneWayCap, bus.AggregateCap, bus.PIOPenalty)
	fmt.Printf("  gateway pipeline: 2 buffers, step overhead %v, default MTU %d B\n",
		model.GatewayStepOverhead, model.DefaultMTU)
	fmt.Printf("  drivers: %v\n", core.Drivers())
}
