// Command madping is the point-to-point latency/bandwidth tool: a
// Madeleine II ping-pong over any supported driver, the workload behind
// Fig. 4 and Fig. 5.
//
// Usage:
//
//	madping -driver sisci
//	madping -driver bip -min 4 -max 4194304
//	madping -driver bip -trace           # + span timeline, per-TM latencies
//	madping -trace -trace-json ping.json # + Chrome trace-event JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"madeleine2/internal/bench"
	"madeleine2/internal/core"
	"madeleine2/internal/trace"
)

func main() {
	driver := flag.String("driver", "sisci", fmt.Sprintf("protocol module: %v", core.Drivers()))
	min := flag.Int("min", 4, "smallest message size (bytes)")
	max := flag.Int("max", 2<<20, "largest message size (bytes)")
	showTrace := flag.Bool("trace", false, "record spans: print an ASCII timeline, per-TM latency histograms and channel stats")
	traceJSON := flag.String("trace-json", "", "with -trace, also write a Chrome trace-event JSON file (chrome://tracing, Perfetto)")
	traceLimit := flag.Int("trace-limit", 16384, "span recorder capacity for -trace")
	flag.Parse()

	var obs *core.Observer
	if *showTrace || *traceJSON != "" {
		obs = core.NewObserver(trace.New(*traceLimit))
	}
	_, chans, err := bench.TwoNodesObserved(*driver, obs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madping: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("madping: Madeleine II over %s (virtual time)\n", *driver)
	fmt.Printf("%12s %14s %12s\n", "size", "one-way", "MB/s")
	for n := *min; n <= *max; n *= 4 {
		t, err := bench.PingPong(chans, 0, 1, n, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madping: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%12d %14v %12.1f\n", n, t, bench.Point{Size: n, OneWay: t}.Bandwidth())
	}

	if obs != nil {
		fmt.Println()
		fmt.Print(obs.Recorder().Timeline(100))
		fmt.Println()
		fmt.Println("per-TM transfer latency (virtual time):")
		fmt.Print(obs.Report())
		fmt.Printf("\nchannel stats (rank 0): %v\n", chans[0].Stats())
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "madping: %v\n", err)
				os.Exit(1)
			}
			if err := obs.Recorder().Chrome(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "madping: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "madping: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceJSON)
		}
	}
}
