// Command madping is the point-to-point latency/bandwidth tool: a
// Madeleine II ping-pong over any supported driver, the workload behind
// Fig. 4 and Fig. 5.
//
// Usage:
//
//	madping -driver sisci
//	madping -driver bip -min 4 -max 4194304
package main

import (
	"flag"
	"fmt"
	"os"

	"madeleine2/internal/bench"
	"madeleine2/internal/core"
)

func main() {
	driver := flag.String("driver", "sisci", fmt.Sprintf("protocol module: %v", core.Drivers()))
	min := flag.Int("min", 4, "smallest message size (bytes)")
	max := flag.Int("max", 2<<20, "largest message size (bytes)")
	flag.Parse()

	_, chans, err := bench.TwoNodes(*driver)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madping: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("madping: Madeleine II over %s (virtual time)\n", *driver)
	fmt.Printf("%12s %14s %12s\n", "size", "one-way", "MB/s")
	for n := *min; n <= *max; n *= 4 {
		t, err := bench.PingPong(chans, 0, 1, n, 5)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madping: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%12d %14v %12.1f\n", n, t, bench.Point{Size: n, OneWay: t}.Bandwidth())
	}
}
