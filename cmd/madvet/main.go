// Command madvet is the Madeleine invariant checker: a multichecker of
// the nine analyzers in internal/analysis/madvet, enforcing the
// pack/lease/virtual-time contracts the type system cannot.
//
// Standalone (the usual way — loads the whole pattern in one run, so
// interprocedural ownership summaries span packages):
//
//	go run ./cmd/madvet ./...
//	go run ./cmd/madvet -json ./internal/core
//
// As a vet tool (integrates with go vet's per-package caching; summaries
// are per-unit only — see unitchecker.go):
//
//	go vet -vettool=$(which madvet) ./...
//
// Findings can be suppressed line by line with a justified directive —
// `//madvet:ignore <analyzer> -- <reason>` — which is itself checked
// (unknown analyzer, missing reason, or stale directives are diagnosed).
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"madeleine2/internal/analysis"
	"madeleine2/internal/analysis/madvet"
)

func main() {
	// go vet's vettool protocol probes with -V=full and then invokes the
	// tool with a single *.cfg argument. Handle both before flag parsing
	// so our own flags never collide with vet's.
	if len(os.Args) == 2 {
		if strings.HasPrefix(os.Args[1], "-V") {
			fmt.Printf("%s version madvet-1.0\n", filepath.Base(os.Args[0]))
			return
		}
		if os.Args[1] == "-flags" {
			// The go command asks which flags the tool supports; madvet
			// takes none in vettool mode.
			fmt.Println("[]")
			return
		}
		if strings.HasSuffix(os.Args[1], ".cfg") {
			os.Exit(runUnitchecker(os.Args[1]))
		}
	}
	os.Exit(runStandalone())
}

func runStandalone() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: madvet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range madvet.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n                 "))
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range madvet.Analyzers {
			fmt.Println(a.Name)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modPath, modDir, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}
	loader := analysis.NewLoader(modPath, modDir)
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}
	pkgs, err := loader.Load(paths...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}
	// Stale-//madvet:ignore detection needs whole-module summaries: on a
	// package subset a directive justified by a cross-package finding
	// looks unused. Flag staleness only when the run covers the module.
	runner := analysis.RunUnit
	if wholeModule(loader, paths) {
		runner = analysis.Run
	}
	diags, err := runner(pkgs, madvet.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}

	if *jsonOut {
		type jsonDiag struct {
			Pos      string `json:"posn"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{Pos: d.Position(loader.Fset).String(), Analyzer: d.Category, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		_ = enc.Encode(out)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", d.Position(loader.Fset), d.Category, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// wholeModule reports whether the loaded paths cover every package of
// the module.
func wholeModule(loader *analysis.Loader, paths []string) bool {
	all, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		return false
	}
	have := make(map[string]bool, len(paths))
	for _, p := range paths {
		have[p] = true
	}
	for _, p := range all {
		if !have[p] {
			return false
		}
	}
	return true
}

// findModule walks up from the working directory to the enclosing go.mod.
func findModule() (path, dir string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
