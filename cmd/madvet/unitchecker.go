package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"madeleine2/internal/analysis"
	"madeleine2/internal/analysis/madvet"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool for each package unit (see cmd/go/internal/work and
// golang.org/x/tools/go/analysis/unitchecker). Fields we do not use are
// still listed so the decode is strict about nothing.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnitchecker analyzes one package unit described by a .cfg file,
// resolving imports through the compiler export data the go command
// already built. Returns the process exit code.
//
// Interprocedural ownership summaries are computed from this unit's
// function bodies only: export data carries no bodies and madvet's vetx
// files are empty, so a callee in another package has no summary and the
// summary-driven rules fall back to their conservative (exempting)
// defaults. The vettool mode is therefore strictly weaker than a
// standalone whole-tree run — still sound for what it does report, and
// never noisier. CI runs both: the standalone gate for full strength,
// this mode for go vet cache integration.
func runUnitchecker(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "madvet: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg, 0)
			}
			fmt.Fprintln(os.Stderr, "madvet:", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tc := &types.Config{Importer: imp, FakeImportC: true, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, 0)
		}
		fmt.Fprintln(os.Stderr, "madvet:", err)
		return 2
	}

	// Test files are typechecked as part of the unit but not analyzed:
	// like the standalone loader, madvet checks library code only (tests
	// deliberately discard errors and leak in teardown shapes).
	var libFiles []*ast.File
	for _, f := range files {
		if name := fset.Position(f.Pos()).Filename; !strings.HasSuffix(name, "_test.go") {
			libFiles = append(libFiles, f)
		}
	}

	code := 0
	if !cfg.VetxOnly {
		apkg := &analysis.Package{
			Path:  cfg.ImportPath,
			Dir:   cfg.Dir,
			Fset:  fset,
			Files: libFiles,
			Types: pkg,
			Info:  info,
		}
		// RunUnit, not Run: with per-unit summaries a whole-tree-justified
		// //madvet:ignore can be legitimately unused here, so the
		// stale-directive check stays with the standalone gate.
		diags, err := analysis.RunUnit([]*analysis.Package{apkg}, madvet.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "madvet:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
		}
		if len(diags) > 0 {
			code = 1
		}
	}
	return writeVetx(cfg, code)
}

// writeVetx writes the (empty: madvet exports no facts) vetx output the
// go command caches for downstream units, then passes the code through.
func writeVetx(cfg vetConfig, code int) int {
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "madvet:", err)
			return 2
		}
	}
	return code
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
