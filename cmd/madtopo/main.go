// Command madtopo loads a cluster/session description file (see
// internal/config), builds the simulated cluster, prints the topology, and
// runs a smoke message over every declared channel and virtual channel.
//
// Usage:
//
//	madtopo -config cluster.cfg
//	madtopo          # built-in §6.2 testbed description
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"madeleine2/internal/config"
	"madeleine2/internal/core"
	"madeleine2/internal/fwd"
	"madeleine2/internal/vclock"
)

// defaultConfig is the paper's §6.2 testbed.
const defaultConfig = `
# CLUSTER 2000 §6.2 testbed: SCI cluster {0,1,2}, Myrinet cluster {2,3,4},
# gateway node 2, Fast Ethernet everywhere.
nodes 5
adapter sci 0 1 2
adapter myrinet 2 3 4
adapter ethernet *
channel ctrl tcp
channel san sisci nodes=0,1,2
vchannel het mtu=16k
  segment sisci nodes=0,1,2
  segment bip nodes=2,3,4
end
`

func main() {
	path := flag.String("config", "", "session description file (default: the built-in §6.2 testbed)")
	flag.Parse()

	text := defaultConfig
	if *path != "" {
		b, err := os.ReadFile(*path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madtopo: %v\n", err)
			os.Exit(1)
		}
		text = string(b)
	}
	cfg, err := config.ParseString(text)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madtopo: %v\n", err)
		os.Exit(1)
	}
	cl, err := cfg.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "madtopo: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	fmt.Printf("cluster: %d nodes\n", cfg.Nodes)
	for r := 0; r < cfg.Nodes; r++ {
		nets := cl.World.Node(r).Networks()
		sort.Strings(nets)
		fmt.Printf("  node %d: %v\n", r, nets)
	}

	var names []string
	for name := range cl.Channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		chans := cl.Channels[name]
		var members []int
		for r := range chans {
			members = append(members, r)
		}
		sort.Ints(members)
		a, b := members[0], members[1]
		lat, err := smoke(chans[a], chans[b], a, b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madtopo: channel %q: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("channel %-8s %-6s members %v  smoke %d→%d: %v one-way\n",
			name, chans[a].PMMName(), members, a, b, lat)
		fmt.Printf("  stats(%d): %s\n", a, chans[a].Stats())
	}

	var vnames []string
	for name := range cl.Virtual {
		vnames = append(vnames, name)
	}
	sort.Strings(vnames)
	for _, name := range vnames {
		vcs := cl.Virtual[name]
		var members []int
		for r := range vcs {
			members = append(members, r)
		}
		sort.Ints(members)
		src, dst := members[0], members[len(members)-1]
		lat, err := vcSmoke(vcs, src, dst)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madtopo: vchannel %q: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("vchannel %-7s members %v  smoke %d→%d (forwarded): %v one-way\n",
			name, members, src, dst, lat)
	}
}

// vcSmoke ships one small message across a virtual channel.
func vcSmoke(vcs map[int]*fwd.VC, src, dst int) (vclock.Time, error) {
	s, r := vclock.NewActor("vsmoke-s"), vclock.NewActor("vsmoke-r")
	errc := make(chan error, 1)
	go func() {
		conn, err := vcs[src].BeginPacking(s, dst)
		if err != nil {
			errc <- err
			return
		}
		if err := conn.Pack([]byte("smoke"), core.SendCheaper, core.ReceiveCheaper); err != nil {
			errc <- err
			return
		}
		errc <- conn.EndPacking()
	}()
	conn, err := vcs[dst].BeginUnpacking(r)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 5)
	if err := conn.Unpack(buf, core.SendCheaper, core.ReceiveCheaper); err != nil {
		return 0, err
	}
	if err := conn.EndUnpacking(); err != nil {
		return 0, err
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return r.Now(), nil
}

func smoke(sc, rc *core.Channel, src, dst int) (vclock.Time, error) {
	s, r := vclock.NewActor("smoke-s"), vclock.NewActor("smoke-r")
	errc := make(chan error, 1)
	go func() {
		conn, err := sc.BeginPacking(s, dst)
		if err != nil {
			errc <- err
			return
		}
		if err := conn.Pack([]byte("smoke"), core.SendCheaper, core.ReceiveExpress); err != nil {
			errc <- err
			return
		}
		errc <- conn.EndPacking()
	}()
	conn, err := rc.BeginUnpacking(r)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 5)
	if err := conn.Unpack(buf, core.SendCheaper, core.ReceiveExpress); err != nil {
		return 0, err
	}
	if err := conn.EndUnpacking(); err != nil {
		return 0, err
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return r.Now(), nil
}
