// Command madratchet is the benchmark regression ratchet: it diffs the
// current run's madbench JSON output against the previous run's artifacts
// and exits non-zero when a matched measurement regressed by more than
// the tolerance (latency points and µs anchors must not rise, MB/s and
// msg/s anchors must not fall).
//
// Usage:
//
//	madratchet -old prev/ -new .          # diff every *.json pair by basename
//	madratchet -old prev/BENCH_async.json -new BENCH_async.json
//
// A missing or empty baseline is not an error — the first run of a new
// figure just seeds the next run's baseline — so the tool warns and exits
// zero. Only a matched (figure, series, point) or (figure, anchor) pair
// that got worse fails the build. The inverse gap — a baseline series or
// anchor absent from the NEW run — is warned about loudly (it can never
// regress, so it would otherwise pass forever) and fails the build when
// -strict is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"madeleine2/internal/bench"
)

func main() {
	oldPath := flag.String("old", "", "baseline: a madbench JSON file or a directory of them")
	newPath := flag.String("new", "", "current run: a madbench JSON file or a directory of them")
	tol := flag.Float64("tol", bench.DefaultTolerance, "relative regression tolerance")
	strict := flag.Bool("strict", false, "fail when a baseline series or anchor is missing from the new run")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "madratchet: both -old and -new are required")
		os.Exit(2)
	}

	oldRes, err := loadAll(*oldPath)
	if err != nil {
		// No baseline yet (first run, expired artifact): nothing to ratchet
		// against. Warn and pass so the pipeline can seed one.
		fmt.Printf("madratchet: no usable baseline at %s (%v); skipping\n", *oldPath, err)
		return
	}
	if len(oldRes) == 0 {
		fmt.Printf("madratchet: baseline %s holds no results; skipping\n", *oldPath)
		return
	}
	newRes, err := loadAll(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "madratchet: current run: %v\n", err)
		os.Exit(2)
	}

	// A measurement that vanished from the new run can never regress, so
	// it would pass silently forever. Shout about it; under -strict it is
	// as fatal as a regression.
	missing := bench.Missing(oldRes, newRes)
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "madratchet: WARNING: baseline %s is missing from the new run — it is NOT being ratcheted\n", m)
	}

	regs := bench.Ratchet(oldRes, newRes, *tol)
	if len(regs) == 0 {
		if len(missing) > 0 && *strict {
			fmt.Fprintf(os.Stderr, "madratchet: %d baseline measurement(s) missing and -strict is set\n", len(missing))
			os.Exit(1)
		}
		fmt.Printf("madratchet: no regressions beyond %.0f%% across %d baseline results\n",
			*tol*100, len(oldRes))
		return
	}
	fmt.Fprintf(os.Stderr, "madratchet: %d regression(s) beyond %.0f%%:\n", len(regs), *tol*100)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

// loadAll reads one madbench JSON file, or every *.json in a directory.
func loadAll(path string) ([]bench.Result, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return bench.LoadResults(path)
	}
	files, err := filepath.Glob(filepath.Join(path, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var all []bench.Result
	for _, f := range files {
		res, err := bench.LoadResults(f)
		if err != nil {
			// Directories may hold non-madbench JSON (e.g. Chrome traces);
			// skip what doesn't parse as results.
			continue
		}
		all = append(all, res...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no madbench results in %s", path)
	}
	return all, nil
}
