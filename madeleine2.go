// Package madeleine2 is the public API of this reproduction of
// "Madeleine II: a Portable and Efficient Communication Library for
// High-Performance Cluster Computing" (Aumage et al., IEEE CLUSTER 2000).
//
// It re-exports the library's user-facing surface:
//
//   - cluster construction (a simulated World of nodes and NIC adapters —
//     the 1999 hardware the paper ran on is rebuilt in-process, with real
//     data movement and deterministic virtual time),
//   - sessions and channels with the paper's pack/unpack interface and
//     semantic flags (send_SAFER / send_LATER / send_CHEAPER,
//     receive_EXPRESS / receive_CHEAPER),
//   - virtual channels with gateway forwarding for clusters of clusters.
//
// Quickstart:
//
//	w := madeleine2.NewWorld(2)
//	w.Node(0).AddAdapter(madeleine2.SCINetwork)
//	w.Node(1).AddAdapter(madeleine2.SCINetwork)
//	sess := madeleine2.NewSession(w)
//	chans, _ := sess.NewChannel(madeleine2.ChannelSpec{Name: "main", Driver: "sisci"})
//
//	// rank 0
//	a := madeleine2.NewActor("rank0")
//	conn, _ := chans[0].BeginPacking(a, 1)
//	conn.Pack(hdr, madeleine2.SendCheaper, madeleine2.ReceiveExpress)
//	conn.Pack(body, madeleine2.SendCheaper, madeleine2.ReceiveCheaper)
//	conn.EndPacking()
//
// The higher layers of §5.3 live in internal/mpi (the ch_mad MPI device)
// and internal/nexus (the Nexus RSR runtime); the measurement harness that
// regenerates every figure lives in internal/bench and cmd/madbench.
package madeleine2

import (
	"madeleine2/internal/bip"
	"madeleine2/internal/core"
	"madeleine2/internal/fwd"
	"madeleine2/internal/metrics"
	"madeleine2/internal/sbp"
	"madeleine2/internal/simnet"
	"madeleine2/internal/sisci"
	"madeleine2/internal/tcpnet"
	"madeleine2/internal/trace"
	"madeleine2/internal/vclock"
	"madeleine2/internal/via"
)

// Core communication types (§2 of the paper).
type (
	// Session is one Madeleine II run over a cluster.
	Session = core.Session
	// Channel is a closed world of communication on one network interface.
	Channel = core.Channel
	// Connection is one in-construction or in-extraction message.
	Connection = core.Connection
	// ChannelSpec describes a channel to create collectively.
	ChannelSpec = core.ChannelSpec
	// RailSpec names one rail (driver + adapter index) of a
	// multi-rail striped channel; see ChannelSpec.Rails.
	RailSpec = core.RailSpec
	// SendMode is the emission flag of Pack (send_SAFER/LATER/CHEAPER).
	SendMode = core.SendMode
	// RecvMode is the reception flag (receive_EXPRESS/CHEAPER).
	RecvMode = core.RecvMode
)

// Asynchronous submission interface: non-blocking Submit* calls backed by
// the session's bounded progress engine, with completion queues. The sync
// Pack/Unpack API above is a thin wrapper over the same machinery.
type (
	// SessionSpec configures the session's progress engine.
	SessionSpec = core.SessionSpec
	// AsyncMsg is one asynchronous conversation (the Submit-side analog
	// of a Connection).
	AsyncMsg = core.AsyncMsg
	// Request is the caller's handle on one submitted operation.
	Request = core.Request
	// Completion reports the outcome of one submitted operation.
	Completion = core.Completion
	// CQ is a completion queue with poll (Poll/Wait) and callback
	// (OnCompletion) delivery.
	CQ = core.CQ
	// OpKind discriminates submitted operations (pack/unpack/end).
	OpKind = core.OpKind
)

// Operation kinds of the asynchronous interface.
const (
	OpPack   = core.OpPack
	OpUnpack = core.OpUnpack
	OpEnd    = core.OpEnd
)

// DefaultWorkers is the progress-engine pool size when SessionSpec.Workers
// is zero.
const DefaultWorkers = core.DefaultWorkers

// NewSessionWith starts a session with an explicit progress-engine
// configuration.
func NewSessionWith(w *World, spec SessionSpec) *Session { return core.NewSessionWith(w, spec) }

// NewCQ builds an empty completion queue in poll mode.
func NewCQ() *CQ { return core.NewCQ() }

// Simulated cluster types.
type (
	// World is the simulated cluster: nodes, adapters, fabrics.
	World = simnet.World
	// Node is one simulated host.
	Node = simnet.Node
	// Actor is a thread of control with a virtual clock.
	Actor = vclock.Actor
	// Time is a virtual-time instant or duration in nanoseconds.
	Time = vclock.Time
)

// Cluster-of-clusters types (§6).
type (
	// VirtualChannel is a channel spanning a sequence of real channels
	// through gateway nodes.
	VirtualChannel = fwd.VC
	// VirtualChannelSpec describes a virtual channel.
	VirtualChannelSpec = fwd.Spec
	// VirtualConnection is one message over a virtual channel.
	VirtualConnection = fwd.VConn
)

// The pack/unpack semantic flags (§2.2).
const (
	SendCheaper = core.SendCheaper
	SendSafer   = core.SendSafer
	SendLater   = core.SendLater

	ReceiveCheaper = core.ReceiveCheaper
	ReceiveExpress = core.ReceiveExpress
)

// Fabric names for Node.AddAdapter.
const (
	MyrinetNetwork  = bip.Network
	SCINetwork      = sisci.Network
	EthernetNetwork = tcpnet.Network
	VIANetwork      = via.Network
	SBPNetwork      = sbp.Network
)

// NewWorld builds a simulated cluster of n nodes.
func NewWorld(n int) *World { return simnet.NewWorld(n) }

// NewSession starts a Madeleine II session over the world.
func NewSession(w *World) *Session { return core.NewSession(w) }

// NewActor creates a thread-of-control clock.
func NewActor(name string) *Actor { return vclock.NewActor(name) }

// Observability types: the session-wide sink behind the tools' -trace
// flags. Install with Session.SetObserver before creating channels.
type (
	// Observer aggregates spans and per-TM latency histograms for every
	// layer of a session's message path. A nil *Observer is the no-op
	// fast path.
	Observer = core.Observer
	// TraceRecorder collects virtual-time spans; render with Timeline
	// (ASCII) or Chrome (trace-event JSON).
	TraceRecorder = trace.Recorder
)

// NewObserver builds an observer recording spans into rec (nil keeps
// only the per-TM latency histograms).
func NewObserver(rec *TraceRecorder) *Observer { return core.NewObserver(rec) }

// Metrics plane: every session owns an always-on registry (fault
// injections, fwd reliability, async engine and per-channel traffic all
// publish into it), exposed on demand over HTTP.
type (
	// MetricsRegistry is a session's named-metric registry; snapshot it
	// directly or serve it with ServeMetrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is one sorted point-in-time view of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsServer is a running exposition endpoint; Close it when done.
	MetricsServer = metrics.Server
)

// MergeTraces stitches per-session span recorders into one timeline;
// spans carrying the same trace ID (propagated across fwd gateways)
// render as a single cross-cluster flow in the Chrome export.
func MergeTraces(recs ...*TraceRecorder) *TraceRecorder { return trace.Merge(recs...) }

// ServeMetrics exposes the session's registry over HTTP: Prometheus text
// on /metrics, the JSON snapshot (madtop's wire format) on
// /metrics.json. addr is a listen address like "127.0.0.1:0"; the
// server's URL reports the bound port. Opt-in: sessions that never call
// it bind no socket and pay nothing beyond the registry's atomics.
func ServeMetrics(sess *Session, addr string) (*MetricsServer, error) {
	return metrics.Serve(sess.Metrics(), addr)
}

// NewTraceRecorder builds a span recorder keeping at most limit spans
// (0 = unbounded).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.New(limit) }

// NewVirtualChannel collectively creates a virtual channel (§6).
func NewVirtualChannel(sess *Session, spec VirtualChannelSpec) (map[int]*VirtualChannel, error) {
	return fwd.New(sess, spec)
}

// Drivers lists the supported protocol modules.
func Drivers() []string { return core.Drivers() }

// Micros converts a float microsecond count to virtual Time.
func Micros(us float64) Time { return vclock.Micros(us) }

// MBps converts bytes moved in a duration to MB/s (1 MB = 1e6 bytes, the
// paper's convention).
func MBps(bytes int, d Time) float64 { return vclock.MBps(bytes, d) }
